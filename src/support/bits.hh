/**
 * @file
 * Small bit-manipulation helpers used throughout the simulators.
 */

#ifndef OMA_SUPPORT_BITS_HH
#define OMA_SUPPORT_BITS_HH

#include <cstdint>

namespace oma
{

/** True when @p x is a (non-zero) power of two. */
constexpr bool
isPowerOfTwo(std::uint64_t x)
{
    return x != 0 && (x & (x - 1)) == 0;
}

/** Integer floor(log2(x)); returns 0 for x == 0. */
constexpr unsigned
floorLog2(std::uint64_t x)
{
    unsigned r = 0;
    while (x > 1) {
        x >>= 1;
        ++r;
    }
    return r;
}

/** Integer ceil(log2(x)); returns 0 for x <= 1. */
constexpr unsigned
ceilLog2(std::uint64_t x)
{
    return x <= 1 ? 0 : floorLog2(x - 1) + 1;
}

/** Round @p x down to the nearest multiple of power-of-two @p align. */
constexpr std::uint64_t
alignDown(std::uint64_t x, std::uint64_t align)
{
    return x & ~(align - 1);
}

/** Round @p x up to the nearest multiple of power-of-two @p align. */
constexpr std::uint64_t
alignUp(std::uint64_t x, std::uint64_t align)
{
    return (x + align - 1) & ~(align - 1);
}

/** Extract bits [lo, lo+len) of @p x. */
constexpr std::uint64_t
bitField(std::uint64_t x, unsigned lo, unsigned len)
{
    return (x >> lo) & ((len >= 64) ? ~0ULL : ((1ULL << len) - 1));
}

} // namespace oma

#endif // OMA_SUPPORT_BITS_HH
