/**
 * @file
 * QueryEngine implementation: warm-serve, coalesce or compute.
 */

#include "api/query_engine.hh"

#include <algorithm>
#include <utility>

#include "area/mqf.hh"
#include "core/search_strategy.hh"
#include "obs/metrics.hh"
#include "support/threadpool.hh"

namespace oma::api
{

namespace
{

void
count(obs::Observation *observation, const char *name,
      std::uint64_t delta = 1)
{
    if (observation != nullptr)
        observation->metrics.add(name, delta);
}

} // namespace

SweepGrid
SweepGrid::fromSpace(const ConfigSpace &space)
{
    SweepGrid grid;
    // The sweep measures the full associativity grid; ranking applies
    // the request's max_cache_ways restriction (Table 7 ranks 2-way
    // out of the same measurements Table 6 uses).
    grid.icacheGeoms = space.cacheGeometries();
    grid.dcacheGeoms = space.cacheGeometries();
    grid.tlbGeoms = space.tlbGeometries();
    grid.components = space.extensionSlots();
    return grid;
}

QueryEngine::QueryEngine(QueryEngineConfig config)
    : _config(std::move(config)),
      _store(ArtifactStore::open(_config.storeDir))
{
}

bool
QueryEngine::validate(const AllocationRequest &request,
                      std::string &error)
{
    if (request.workloads.empty()) {
        error = "request.workloads: at least one workload required";
        return false;
    }
    if (request.references == 0) {
        error = "request.references: must be positive";
        return false;
    }
    if (!(request.budgetRbe > 0.0)) {
        error = "request.budget_rbe: must be positive";
        return false;
    }
    if (request.maxCacheWays == 0) {
        error = "request.max_cache_ways: must be positive";
        return false;
    }
    if (request.space.tlbGeometries().empty()) {
        error = "request.space: TLB axis is empty";
        return false;
    }
    if (request.space.cacheGeometries(request.maxCacheWays).empty()) {
        error = "request.space: no cache geometry is realizable "
                "under max_cache_ways";
        return false;
    }
    if (request.strategy == Strategy::Annealing &&
        (request.annealing.chains == 0 ||
         request.annealing.iterations == 0)) {
        error = "request.annealing: chains and iterations must be "
                "positive";
        return false;
    }
    return true;
}

std::vector<SweepResult>
QueryEngine::sweep(const AllocationRequest &request,
                   obs::Observation *observation,
                   const SweepGrid *grid) const
{
    SweepGrid derived;
    if (grid == nullptr) {
        derived = SweepGrid::fromSpace(request.space);
        grid = &derived;
    }
    ComponentSweep sweep(grid->icacheGeoms, grid->dcacheGeoms,
                         grid->tlbGeoms);
    for (const ComponentSlot &slot : grid->components)
        sweep.addComponent(slot);
    const RunConfig rc = request.runConfig(_config.storeDir);
    std::vector<SweepResult> results;
    results.reserve(request.workloads.size());
    for (const BenchmarkId id : request.workloads)
        results.push_back(
            sweep.run(benchmarkParams(id), request.os, rc,
                      observation));
    return results;
}

SweepResult
QueryEngine::replay(const AllocationRequest &request,
                    const RecordedTrace &trace,
                    obs::Observation *observation,
                    const SweepGrid *grid) const
{
    SweepGrid derived;
    if (grid == nullptr) {
        derived = SweepGrid::fromSpace(request.space);
        grid = &derived;
    }
    ComponentSweep sweep(grid->icacheGeoms, grid->dcacheGeoms,
                         grid->tlbGeoms);
    for (const ComponentSlot &slot : grid->components)
        sweep.addComponent(slot);
    return sweep.run(trace, request.threads, observation);
}

ComponentCpiTables
QueryEngine::measure(const AllocationRequest &request,
                     obs::Observation *observation,
                     const SweepGrid *grid) const
{
    return ComponentCpiTables::average(
        this->sweep(request, observation, grid),
        MachineParams::decstation3100());
}

AllocationResponse
QueryEngine::rank(const AllocationRequest &request,
                  const ComponentCpiTables &tables,
                  obs::Observation *observation) const
{
    const SearchSpace space(tables, AreaModel(), request.budgetRbe,
                            request.maxCacheWays);
    SearchResult result;
    if (request.strategy == Strategy::Annealing) {
        result = AnnealingStrategy(request.annealing)
                     .search(space, request.threads, observation);
    } else {
        result = ExhaustiveStrategy().search(space, request.threads,
                                             observation);
    }
    AllocationResponse response;
    response.strategy = request.strategy;
    response.inBudget = result.allocations.size();
    response.candidates = result.candidates;
    response.evaluations = result.evaluations;
    response.prunedSubspaces = result.prunedSubspaces;
    response.baseCpi = tables.baseCpi;
    response.wbCpi = tables.wbCpi;
    response.otherCpi = tables.otherCpi;
    response.allocations = std::move(result.allocations);
    if (request.topK != 0 &&
        response.allocations.size() > request.topK)
        response.allocations.resize(std::size_t(request.topK));
    return response;
}

std::string
QueryEngine::computeAnswer(const AllocationRequest &request,
                           obs::Observation *observation) const
{
    std::unique_ptr<obs::Span> span;
    if (observation != nullptr)
        span = std::make_unique<obs::Span>(observation->metrics,
                                           "serve/compute");
    const ComponentCpiTables tables = measure(request, observation);
    return encodeResponse(rank(request, tables, observation));
}

std::string
QueryEngine::answer(const AllocationRequest &request,
                    obs::Observation *observation)
{
    std::unique_ptr<obs::Span> span;
    if (observation != nullptr)
        span = std::make_unique<obs::Span>(observation->metrics,
                                           "serve/answer");
    count(observation, "serve/requests");
    std::string error;
    if (!validate(request, error)) {
        count(observation, "serve/rejected");
        return encodeError(error);
    }
    const Fingerprint key = request.responseKey();
    if (_store != nullptr) {
        std::string payload;
        if (_store->get(key, payload)) {
            count(observation, "serve/warm_hits");
            return payload;
        }
    }
    InflightTable::Lease lease = inflightTable().join(key);
    if (!lease.leader()) {
        count(observation, "serve/dedup_hits");
        return lease.payload();
    }
    const std::string payload = computeAnswer(request, observation);
    count(observation, "serve/computed");
    if (_store != nullptr)
        _store->put(key, payload);
    lease.publish(payload);
    return payload;
}

std::string
QueryEngine::answerJson(std::string_view request_json,
                        obs::Observation *observation)
{
    AllocationRequest request;
    std::string error;
    if (!decodeRequest(request_json, request, error)) {
        count(observation, "serve/requests");
        count(observation, "serve/rejected");
        return encodeError(error);
    }
    return answer(request, observation);
}

std::vector<std::string>
QueryEngine::answerBatch(const std::vector<std::string> &request_lines,
                         obs::Observation *observation)
{
    count(observation, "serve/batches");
    std::vector<std::string> answers(request_lines.size());

    // Group decodable requests by response key deterministically
    // before any computation, so N identical lines coalesce to one
    // compute regardless of scheduling and `serve/dedup_hits` is a
    // pure function of the batch.
    struct Group
    {
        AllocationRequest request;
        std::string key;
        std::vector<std::size_t> lines;
    };
    std::vector<Group> groups;
    std::size_t admitted = 0;
    for (std::size_t i = 0; i < request_lines.size(); ++i) {
        if (admitted >= _config.maxBatch) {
            count(observation, "serve/requests");
            count(observation, "serve/rejected");
            answers[i] = encodeError(
                "batch admission limit (" +
                std::to_string(_config.maxBatch) + ") exceeded");
            continue;
        }
        ++admitted;
        AllocationRequest request;
        std::string error;
        if (!decodeRequest(request_lines[i], request, error)) {
            count(observation, "serve/requests");
            count(observation, "serve/rejected");
            answers[i] = encodeError(error);
            continue;
        }
        std::string key = request.responseKey().text();
        bool joined = false;
        for (Group &group : groups) {
            if (group.key == key) {
                group.lines.push_back(i);
                joined = true;
                break;
            }
        }
        if (joined) {
            count(observation, "serve/requests");
            count(observation, "serve/dedup_hits");
            continue;
        }
        groups.push_back(
            Group{std::move(request), std::move(key), {i}});
    }

    // Compute distinct requests on bounded lanes; per-group metric
    // shards merge in group order below, so the registry stays
    // schedule-independent.
    std::vector<obs::Observation> shards(groups.size());
    const unsigned lanes = unsigned(std::min<std::size_t>(
        std::max(1u, _config.maxInflight), groups.size()));
    std::vector<std::string> group_answers(groups.size());
    if (!groups.empty()) {
        parallelFor(lanes, 0, groups.size(), [&](std::size_t g) {
            group_answers[g] = answer(groups[g].request, &shards[g]);
        });
    }
    for (std::size_t g = 0; g < groups.size(); ++g) {
        if (observation != nullptr)
            observation->metrics.merge(shards[g].metrics);
        for (const std::size_t line : groups[g].lines)
            answers[line] = group_answers[g];
    }
    return answers;
}

} // namespace oma::api
