/**
 * @file
 * Tests for the unified-L1 and two-level cache hierarchy models.
 */

#include <gtest/gtest.h>

#include "cache/hierarchy.hh"
#include "support/rng.hh"

namespace oma
{
namespace
{

CacheParams
params(std::uint64_t kb, std::uint64_t line_words, std::uint64_t ways)
{
    CacheParams p;
    p.geom = CacheGeometry::fromWords(kb * 1024, line_words, ways);
    return p;
}

TEST(UnifiedCache, PortConflictsChargeDataRefs)
{
    HierarchyPenalties pen;
    UnifiedCache unified(params(8, 4, 2), pen);
    unified.access(0x1000, RefKind::IFetch);
    unified.access(0x2000, RefKind::Load);
    unified.access(0x2000, RefKind::Load); // hit, still a conflict
    const HierarchyStats &s = unified.stats();
    EXPECT_EQ(s.instructions, 1u);
    EXPECT_EQ(s.dataRefs, 2u);
    EXPECT_EQ(s.portConflicts, 2u);
    // Conflicts: 2 cycles; misses: fetch (9) + first load (9).
    EXPECT_EQ(s.stallCycles, 2u + 9u + 9u);
}

TEST(UnifiedCache, SharedArrayCausesCrossInterference)
{
    // Code and data that alias in the unified array evict each other;
    // a split pair of half the size each would keep both.
    HierarchyPenalties pen;
    UnifiedCache unified(params(1, 4, 1), pen); // 1 KB direct-mapped
    // Same index, different tags.
    for (int i = 0; i < 10; ++i) {
        unified.access(0x0000, RefKind::IFetch);
        unified.access(0x8000, RefKind::Load);
    }
    // Every access after the first pair misses (thrash).
    EXPECT_EQ(unified.stats().l1Misses, 20u);
}

TEST(TwoLevelCache, NoL2GoesStraightToMemory)
{
    HierarchyPenalties pen;
    TwoLevelCache two(params(4, 4, 1), params(4, 4, 1),
                      params(64, 8, 4), /*has_l2=*/false, pen);
    two.access(0x1000, RefKind::IFetch);
    EXPECT_EQ(two.stats().l1Misses, 1u);
    EXPECT_EQ(two.stats().l2Misses, 1u);
    EXPECT_EQ(two.stats().l2Hits, 0u);
    EXPECT_EQ(two.stats().stallCycles, 9u); // 6 + 3 extra words
}

TEST(TwoLevelCache, L2CapturesL1ConflictMisses)
{
    HierarchyPenalties pen;
    TwoLevelCache two(params(1, 4, 1), params(1, 4, 1),
                      params(64, 4, 4), /*has_l2=*/true, pen);
    // Two fetch streams that conflict in the tiny L1 but coexist in
    // the L2: after warmup every L1 miss is an L2 hit.
    for (int i = 0; i < 50; ++i) {
        two.access(0x0000, RefKind::IFetch);
        two.access(0x8000, RefKind::IFetch);
    }
    const HierarchyStats &s = two.stats();
    EXPECT_EQ(s.l1Misses, 100u);
    EXPECT_EQ(s.l2Misses, 2u); // compulsory only
    EXPECT_EQ(s.l2Hits, 98u);
    // L2 hits cost the short penalty: far cheaper than memory.
    const std::uint64_t expected = 98 * 2 + 2 * (9 + 2 + 2 * 0);
    // l2 fill penalty for the miss path: mem fill of L2 line (6+3)
    // plus L1 refill from L2 (2).
    EXPECT_EQ(s.stallCycles, expected + 2 * 0);
}

TEST(TwoLevelCache, MissPathChargesBothLevels)
{
    HierarchyPenalties pen;
    TwoLevelCache two(params(4, 4, 1), params(4, 4, 1),
                      params(64, 8, 4), /*has_l2=*/true, pen);
    two.access(0x4000, RefKind::Load);
    // L2 line 8 words: 6 + 7 = 13; L1 refill from L2: 2.
    EXPECT_EQ(two.stats().stallCycles, 13u + 2u);
}

TEST(TwoLevelCache, StoreMissOnOneWordLineFree)
{
    HierarchyPenalties pen;
    TwoLevelCache two(params(4, 1, 1), params(4, 1, 1),
                      params(64, 4, 4), true, pen);
    two.access(0x4000, RefKind::Store);
    EXPECT_EQ(two.stats().stallCycles, 0u);
    EXPECT_EQ(two.stats().l1Misses, 1u);
}

TEST(TwoLevelCache, L2SmallerThanL1StaysConsistent)
{
    // A degenerate but legal geometry: the L2 is smaller than the
    // L1s, so it can only ever hold a subset and nearly every L1
    // miss must also miss the L2. The conservation law — every L1
    // miss is exactly one L2 hit or one L2 miss — must hold anyway.
    HierarchyPenalties pen;
    TwoLevelCache two(params(8, 4, 2), params(8, 4, 2),
                      params(2, 4, 1), /*has_l2=*/true, pen);
    Rng rng(11);
    for (int i = 0; i < 40000; ++i) {
        two.access(rng.below(32 * 1024) & ~3ULL,
                   static_cast<RefKind>(rng.below(3)));
    }
    const HierarchyStats &s = two.stats();
    EXPECT_GT(s.l1Misses, 0u);
    EXPECT_EQ(s.l2Hits + s.l2Misses, s.l1Misses);
    // The inverted hierarchy mostly forwards to memory.
    EXPECT_GT(s.l2Misses, s.l2Hits);
}

TEST(TwoLevelCache, OneWayL2CapturesConflictFreeReuse)
{
    // 1-way (direct-mapped) L2 behind tiny L1s: the L2 still absorbs
    // L1 capacity misses whose lines do not conflict in the L2, and
    // the L1-miss conservation law holds on the edge associativity.
    HierarchyPenalties pen;
    TwoLevelCache two(params(1, 4, 1), params(1, 4, 1),
                      params(32, 8, 1), /*has_l2=*/true, pen);
    for (int round = 0; round < 20; ++round) {
        // An 8-KB stride-16B sweep: far beyond the 1-KB L1s, well
        // inside the 32-KB direct-mapped L2, no L2 conflicts.
        for (std::uint64_t addr = 0; addr < 8 * 1024; addr += 16)
            two.access(addr, RefKind::Load);
    }
    const HierarchyStats &s = two.stats();
    EXPECT_EQ(s.l2Hits + s.l2Misses, s.l1Misses);
    EXPECT_GT(s.l2Hits, 0u);
    // After the compulsory first round every L1 miss hits the L2.
    EXPECT_LE(s.l2Misses, s.l1Misses / 10);
}

TEST(TwoLevelCache, L2WinsWhenTheWorkingSetFitsIt)
{
    // A working set between the L1 and L2 capacities is exactly
    // where an L2 pays off: (reuse-free streams can even lose, since
    // the L2's longer fill line costs more per memory miss.)
    Rng rng(9);
    std::vector<std::pair<std::uint64_t, RefKind>> refs;
    for (int i = 0; i < 60000; ++i) {
        // 48-KB hot set: misses the 4-KB L1s, fits the 64-KB L2.
        refs.push_back({rng.below(48 * 1024) & ~3ULL,
                        static_cast<RefKind>(rng.below(3))});
    }
    HierarchyPenalties pen;
    TwoLevelCache without(params(4, 4, 2), params(4, 4, 2),
                          params(64, 8, 4), false, pen);
    TwoLevelCache with(params(4, 4, 2), params(4, 4, 2),
                       params(64, 8, 4), true, pen);
    for (const auto &[addr, kind] : refs) {
        without.access(addr, kind);
        with.access(addr, kind);
    }
    EXPECT_LT(with.stats().stallCycles, without.stats().stallCycles);
    EXPECT_EQ(with.stats().l1Misses, without.stats().l1Misses);
}

} // namespace
} // namespace oma
