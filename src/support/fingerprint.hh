/**
 * @file
 * Canonical fingerprints for cacheable simulation inputs.
 *
 * The artifact store (src/store) keys every entry by the complete
 * configuration that produced it: workload parameters, OS
 * personality, seed, trace-format version, component geometry. A
 * Fingerprint accumulates those fields as a canonical `name=value`
 * text — one line per field, in the order the caller declares them —
 * and derives a 128-bit content hash from that text. The text itself
 * travels with every store entry, so a hash collision is detected by
 * comparison instead of silently aliasing two configurations.
 *
 * Determinism contract: the canonical text is a pure function of the
 * declared fields. Integers print in decimal, doubles via
 * std::to_chars shortest round-trip form (fully specified by the
 * standard, so identical across runs), strings with a length prefix
 * so embedded separators cannot forge field boundaries.
 */

#ifndef OMA_SUPPORT_FINGERPRINT_HH
#define OMA_SUPPORT_FINGERPRINT_HH

#include <charconv>
#include <cstdint>
#include <string>
#include <string_view>

namespace oma
{

/** An append-only canonical field serialization plus its hash. */
class Fingerprint
{
  public:
    /** Append an unsigned integer field. */
    void
    u64(std::string_view name, std::uint64_t value)
    {
        appendName(name);
        char buf[24];
        const auto res = std::to_chars(buf, buf + sizeof buf, value);
        _text.append(buf, std::size_t(res.ptr - buf));
        _text.push_back('\n');
    }

    /** Append a floating-point field (shortest round-trip form). */
    void
    real(std::string_view name, double value)
    {
        appendName(name);
        char buf[48];
        const auto res = std::to_chars(buf, buf + sizeof buf, value);
        _text.append(buf, std::size_t(res.ptr - buf));
        _text.push_back('\n');
    }

    /** Append a string field (length-prefixed, so the value cannot
     * forge field boundaries). */
    void
    str(std::string_view name, std::string_view value)
    {
        appendName(name);
        char buf[24];
        const auto res =
            std::to_chars(buf, buf + sizeof buf, value.size());
        _text.append(buf, std::size_t(res.ptr - buf));
        _text.push_back(':');
        _text.append(value);
        _text.push_back('\n');
    }

    /** Append a boolean field. */
    void
    flag(std::string_view name, bool value)
    {
        appendName(name);
        _text.push_back(value ? '1' : '0');
        _text.push_back('\n');
    }

    /** The canonical `name=value` text accumulated so far. */
    [[nodiscard]] const std::string &text() const { return _text; }

    /**
     * 128-bit content hash of the canonical text as 32 lowercase hex
     * digits: two independent 64-bit FNV-1a lanes (distinct offset
     * bases). Store entries carry the full text as well, so even an
     * improbable collision degrades to a detected miss, never to
     * silently aliased results.
     */
    [[nodiscard]] std::string
    hex() const
    {
        std::string out;
        appendHex(out, fnv1a(0xcbf29ce484222325ULL));
        appendHex(out, fnv1a(0x6c62272e07bb0142ULL));
        return out;
    }

  private:
    void
    appendName(std::string_view name)
    {
        _text.append(name);
        _text.push_back('=');
    }

    [[nodiscard]] std::uint64_t
    fnv1a(std::uint64_t basis) const
    {
        std::uint64_t h = basis;
        for (const char c : _text) {
            h ^= std::uint64_t(static_cast<unsigned char>(c));
            h *= 0x100000001b3ULL;
        }
        return h;
    }

    static void
    appendHex(std::string &out, std::uint64_t v)
    {
        static const char digits[] = "0123456789abcdef";
        for (int shift = 60; shift >= 0; shift -= 4)
            out.push_back(digits[(v >> shift) & 0xf]);
    }

    std::string _text;
};

} // namespace oma

#endif // OMA_SUPPORT_FINGERPRINT_HH
