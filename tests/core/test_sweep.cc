/**
 * @file
 * Tests for component sweeps and the averaged CPI tables.
 */

#include <gtest/gtest.h>

#include "core/sweep.hh"

namespace oma
{
namespace
{

std::vector<CacheGeometry>
sizeLadder()
{
    std::vector<CacheGeometry> geoms;
    for (std::uint64_t kb : {2, 8, 32})
        geoms.push_back(CacheGeometry::fromWords(kb * 1024, 4, 1));
    return geoms;
}

std::vector<TlbGeometry>
tlbLadder()
{
    return {TlbGeometry::fullyAssoc(32), TlbGeometry::fullyAssoc(64),
            TlbGeometry(256, 4)};
}

SweepResult
runSweep(OsKind os, std::uint64_t refs = 300000)
{
    ComponentSweep sweep(sizeLadder(), sizeLadder(), tlbLadder());
    RunConfig rc;
    rc.references = refs;
    return sweep.run(BenchmarkId::Mpeg, os, rc);
}

TEST(ComponentSweep, ShapesMatchConfiguration)
{
    const SweepResult r = runSweep(OsKind::Ultrix);
    EXPECT_EQ(r.icacheStats.size(), 3u);
    EXPECT_EQ(r.dcacheStats.size(), 3u);
    EXPECT_EQ(r.tlbStats.size(), 3u);
    EXPECT_EQ(r.references, 300000u);
    EXPECT_GT(r.instructions, 100000u);
}

TEST(ComponentSweep, MissRatiosFallWithCapacity)
{
    const SweepResult r = runSweep(OsKind::Mach);
    EXPECT_GT(r.icacheMissRatio(0), r.icacheMissRatio(1));
    EXPECT_GT(r.icacheMissRatio(1), r.icacheMissRatio(2));
    EXPECT_GT(r.dcacheMissRatio(0), r.dcacheMissRatio(2));
}

TEST(ComponentSweep, CpiContributionMath)
{
    const SweepResult r = runSweep(OsKind::Ultrix);
    const MachineParams mp = MachineParams::decstation3100();
    // icacheCpi = misses x penalty / instructions.
    const double expected = double(r.icacheStats[1].totalMisses()) *
        double(mp.missPenalty(r.icacheGeoms[1])) /
        double(r.instructions);
    EXPECT_DOUBLE_EQ(r.icacheCpi(1, mp), expected);
    EXPECT_GT(r.tlbCpi(0), 0.0);
    EXPECT_GE(r.tlbCpi(0), r.tlbCpi(1)); // larger FA TLB: fewer cycles
}

TEST(ComponentSweep, DcacheStoresFreeOnlyOnOneWordLines)
{
    std::vector<CacheGeometry> narrow = {
        CacheGeometry::fromWords(8 * 1024, 1, 1)};
    std::vector<CacheGeometry> wide = {
        CacheGeometry::fromWords(8 * 1024, 4, 1)};
    ComponentSweep sweep(narrow, wide, tlbLadder());
    RunConfig rc;
    rc.references = 200000;
    const SweepResult r = sweep.run(BenchmarkId::IOzone,
                                    OsKind::Ultrix, rc);
    const MachineParams mp = MachineParams::decstation3100();
    // The 1-word D-config charges only load misses.
    const double d1 = double(r.dcacheStats[0].misses[unsigned(
                          RefKind::Load)]) *
        6.0 / double(r.instructions);
    // (dcacheGeoms holds the "wide" list; dcacheCpi(0) uses it.)
    const double charged = r.dcacheCpi(0, mp);
    const double all_misses =
        double(r.dcacheStats[0].totalMisses()) * 9.0 /
        double(r.instructions);
    EXPECT_LE(charged, all_misses + 1e-12);
    (void)d1;
}

TEST(ComponentSweep, MachTlbServiceExceedsUltrix)
{
    const SweepResult u = runSweep(OsKind::Ultrix);
    const SweepResult m = runSweep(OsKind::Mach);
    EXPECT_GT(m.tlbCpi(1), u.tlbCpi(1)); // 64-entry FA (the R2000)
}

TEST(ComponentCpiTables, AveragesAcrossWorkloads)
{
    ComponentSweep sweep(sizeLadder(), sizeLadder(), tlbLadder());
    RunConfig rc;
    rc.references = 150000;
    std::vector<SweepResult> results;
    results.push_back(sweep.run(BenchmarkId::Mpeg, OsKind::Mach, rc));
    results.push_back(sweep.run(BenchmarkId::Mab, OsKind::Mach, rc));

    const MachineParams mp = MachineParams::decstation3100();
    const ComponentCpiTables tables =
        ComponentCpiTables::average(results, mp);
    ASSERT_EQ(tables.icacheCpi.size(), 3u);
    for (std::size_t i = 0; i < 3; ++i) {
        const double mean = 0.5 * (results[0].icacheCpi(i, mp) +
                                   results[1].icacheCpi(i, mp));
        EXPECT_NEAR(tables.icacheCpi[i], mean, 1e-12);
    }
    EXPECT_DOUBLE_EQ(tables.baseCpi, 1.0);
    const double wb = 0.5 * (results[0].wbCpi + results[1].wbCpi);
    EXPECT_NEAR(tables.wbCpi, wb, 1e-12);
}

TEST(ComponentCpiTablesDeath, EmptyAverageRejected)
{
    EXPECT_DEATH(ComponentCpiTables::average(
                     {}, MachineParams::decstation3100()),
                 "zero sweep");
}

} // namespace
} // namespace oma
