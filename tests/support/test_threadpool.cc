/**
 * @file
 * Tests for the thread pool and parallelFor.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "support/threadpool.hh"

namespace oma
{
namespace
{

TEST(ThreadPool, ResolveThreadsNeverZero)
{
    EXPECT_GE(ThreadPool::resolveThreads(0), 1u);
    EXPECT_EQ(ThreadPool::resolveThreads(1), 1u);
    EXPECT_EQ(ThreadPool::resolveThreads(7), 7u);
}

TEST(ThreadPool, EmptyRangeNeverCallsBody)
{
    ThreadPool pool(4);
    std::atomic<int> calls{0};
    pool.parallelFor(0, 0, [&](std::size_t) { ++calls; });
    pool.parallelFor(5, 5, [&](std::size_t) { ++calls; });
    pool.parallelFor(7, 3, [&](std::size_t) { ++calls; });
    EXPECT_EQ(calls.load(), 0);
}

TEST(ThreadPool, RangeSmallerThanThreadCount)
{
    ThreadPool pool(8);
    std::vector<std::atomic<int>> hits(3);
    pool.parallelFor(0, 3, [&](std::size_t i) { ++hits[i]; });
    for (auto &h : hits)
        EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, EveryIndexRunsExactlyOnce)
{
    ThreadPool pool(4);
    constexpr std::size_t n = 10000;
    std::vector<std::atomic<int>> hits(n);
    pool.parallelFor(0, n, [&](std::size_t i) { ++hits[i]; });
    for (std::size_t i = 0; i < n; ++i)
        ASSERT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(ThreadPool, NonZeroBeginRespected)
{
    ThreadPool pool(3);
    Mutex m;
    std::set<std::size_t> seen;
    pool.parallelFor(10, 20, [&](std::size_t i) {
        LockGuard lock(m);
        seen.insert(i);
    });
    ASSERT_EQ(seen.size(), 10u);
    EXPECT_EQ(*seen.begin(), 10u);
    EXPECT_EQ(*seen.rbegin(), 19u);
}

TEST(ThreadPool, PoolIsReusableAcrossJobs)
{
    ThreadPool pool(4);
    std::atomic<int> total{0};
    for (int round = 0; round < 20; ++round)
        pool.parallelFor(0, 17, [&](std::size_t) { ++total; });
    EXPECT_EQ(total.load(), 20 * 17);
}

TEST(ThreadPool, ExceptionPropagatesToCaller)
{
    ThreadPool pool(4);
    EXPECT_THROW(pool.parallelFor(0, 100,
                                  [&](std::size_t i) {
                                      if (i == 42)
                                          throw std::runtime_error("boom");
                                  }),
                 std::runtime_error);
    // The pool survives a throwing job.
    std::atomic<int> calls{0};
    pool.parallelFor(0, 8, [&](std::size_t) { ++calls; });
    EXPECT_EQ(calls.load(), 8);
}

TEST(ThreadPool, SmallestThrowingIndexWins)
{
    // Every index throws; the rethrown exception must deterministically
    // be the one raised by the smallest index regardless of schedule.
    ThreadPool pool(4);
    for (int round = 0; round < 10; ++round) {
        try {
            pool.parallelFor(3, 64, [&](std::size_t i) {
                throw std::runtime_error(std::to_string(i));
            });
            FAIL() << "expected an exception";
        } catch (const std::runtime_error &e) {
            EXPECT_STREQ(e.what(), "3");
        }
    }
}

TEST(ThreadPool, NestedSubmissionRunsInlineWithoutDeadlock)
{
    // A body submitting to its own pool must not deadlock waiting for
    // workers that are busy running the outer job; nested calls run
    // inline on the submitting lane instead.
    ThreadPool pool(4);
    std::atomic<int> inner{0};
    pool.parallelFor(0, 8, [&](std::size_t) {
        pool.parallelFor(0, 5, [&](std::size_t) { ++inner; });
    });
    EXPECT_EQ(inner.load(), 8 * 5);
}

TEST(ThreadPool, SingleLanePoolRunsOnCallerThread)
{
    ThreadPool pool(1);
    const auto caller = std::this_thread::get_id();
    std::vector<std::thread::id> ids(4);
    pool.parallelFor(0, 4, [&](std::size_t i) {
        ids[i] = std::this_thread::get_id();
    });
    for (const auto &id : ids)
        EXPECT_EQ(id, caller);
}

TEST(ThreadPool, StatsCountTopLevelJobsAndIndices)
{
    ThreadPool pool(4);
    pool.parallelFor(0, 10, [](std::size_t) {});
    pool.parallelFor(5, 9, [](std::size_t) {});
    const ThreadPoolStats stats = pool.stats();
    EXPECT_EQ(stats.jobs, 2u);
    EXPECT_EQ(stats.indices, 14u);
}

TEST(ThreadPool, StatsReadableWhileJobRuns)
{
    // Regression for the unsynchronized stats() read: the accessor is
    // now lock-guarded, so concurrent observers during a running job
    // are race-free (the TSan job runs this suite).
    ThreadPool pool(4);
    std::atomic<bool> stop{false};
    std::thread observer([&] {
        while (!stop.load()) {
            const ThreadPoolStats stats = pool.stats();
            ASSERT_LE(stats.jobs, 64u);
        }
    });
    for (int round = 0; round < 64; ++round)
        pool.parallelFor(0, 32, [](std::size_t) {});
    stop.store(true);
    observer.join();
    EXPECT_EQ(pool.stats().jobs, 64u);
}

TEST(ParallelForHelper, SerialWhenOneThread)
{
    const auto caller = std::this_thread::get_id();
    std::vector<std::thread::id> ids(6);
    parallelFor(1, 0, 6, [&](std::size_t i) {
        ids[i] = std::this_thread::get_id();
    });
    for (const auto &id : ids)
        EXPECT_EQ(id, caller);
}

TEST(ParallelForHelper, CoversRangeWithManyThreads)
{
    constexpr std::size_t n = 500;
    std::vector<std::atomic<int>> hits(n);
    parallelFor(8, 0, n, [&](std::size_t i) { ++hits[i]; });
    for (std::size_t i = 0; i < n; ++i)
        ASSERT_EQ(hits[i].load(), 1);
}

} // namespace
} // namespace oma
