/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * All stochastic behaviour in the library (synthetic workloads, trace
 * sampling, replacement tie-breaking) flows through these generators so
 * that every experiment is exactly reproducible from a seed. We use
 * SplitMix64 for seeding and xoshiro256** as the workhorse generator;
 * both are tiny, fast and well studied.
 */

#ifndef OMA_SUPPORT_RNG_HH
#define OMA_SUPPORT_RNG_HH

#include <cmath>
#include <cstdint>

namespace oma
{

/** One step of the SplitMix64 sequence; also usable as a mixer. */
constexpr std::uint64_t
splitMix64(std::uint64_t &state)
{
    std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

/** Stateless 64-bit mixing function (Stafford variant 13). */
constexpr std::uint64_t
mix64(std::uint64_t z)
{
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

/**
 * xoshiro256** generator. Deterministic given the seed, with a period
 * of 2^256 - 1; more than adequate for trace synthesis.
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed, expanded via SplitMix64. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL)
    {
        std::uint64_t sm = seed;
        for (auto &word : _state)
            word = splitMix64(sm);
    }

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(_state[1] * 5, 7) * 9;
        const std::uint64_t t = _state[1] << 17;

        _state[2] ^= _state[0];
        _state[3] ^= _state[1];
        _state[1] ^= _state[2];
        _state[0] ^= _state[3];
        _state[2] ^= t;
        _state[3] = rotl(_state[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound); bound must be non-zero. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        // Lemire's multiply-shift rejection-free mapping is fine here:
        // bias is negligible for our bounds (<< 2^32).
        return static_cast<std::uint64_t>(
            (static_cast<unsigned __int128>(next()) * bound) >> 64);
    }

    /** Uniform integer in [lo, hi] inclusive. */
    std::uint64_t
    range(std::uint64_t lo, std::uint64_t hi)
    {
        return lo + below(hi - lo + 1);
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli trial with probability @p p. */
    bool
    chance(double p)
    {
        return uniform() < p;
    }

    /**
     * Geometric number of trials until first success (>= 1) for
     * success probability @p p in (0, 1].
     */
    std::uint64_t
    geometric(double p)
    {
        if (p >= 1.0)
            return 1;
        double u = uniform();
        // Avoid log(0).
        if (u <= 0.0)
            u = 0x1.0p-53;
        return 1 +
            static_cast<std::uint64_t>(std::log(u) / std::log1p(-p));
    }

    /**
     * Sample from a truncated Zipf-like distribution over
     * {0, ..., n-1} with exponent @p s, via inverse-CDF on a harmonic
     * approximation. Used for working-set reference skew.
     */
    std::uint64_t
    zipf(std::uint64_t n, double s)
    {
        if (n <= 1)
            return 0;
        // Inverse of the continuous approximation of the Zipf CDF.
        const double u = uniform();
        if (s == 1.0) {
            const double h = std::log(static_cast<double>(n));
            return static_cast<std::uint64_t>(std::exp(u * h)) - 1;
        }
        const double one_minus_s = 1.0 - s;
        const double hn = std::pow(static_cast<double>(n), one_minus_s);
        const double x = std::pow(u * (hn - 1.0) + 1.0, 1.0 / one_minus_s);
        std::uint64_t k = static_cast<std::uint64_t>(x) - 1;
        return k >= n ? n - 1 : k;
    }

  private:
    static constexpr std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t _state[4];
};

} // namespace oma

#endif // OMA_SUPPORT_RNG_HH
