/**
 * @file
 * Shared helpers for the experiment benches.
 *
 * Every bench binary regenerates one table or figure of the paper.
 * Trace volume per workload/OS pair is controlled by the
 * OMA_BENCH_REFS environment variable (default 1,500,000 references),
 * so quick smoke runs and long accurate runs use the same binaries.
 */

#ifndef OMA_BENCH_COMMON_HH
#define OMA_BENCH_COMMON_HH

#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <string>

#include "core/experiment.hh"

namespace omabench
{

/** References simulated per workload/OS pair. */
inline std::uint64_t
benchReferences(std::uint64_t fallback = 1500000)
{
    if (const char *env = std::getenv("OMA_BENCH_REFS")) {
        const std::uint64_t v = std::strtoull(env, nullptr, 10);
        if (v > 0)
            return v;
    }
    return fallback;
}

/** Standard run configuration for benches. */
inline oma::RunConfig
benchRun(std::uint64_t fallback = 1500000)
{
    oma::RunConfig rc;
    rc.references = benchReferences(fallback);
    rc.seed = 42;
    return rc;
}

/** Print the standard bench banner. */
inline void
banner(const std::string &what, const std::string &paper_ref)
{
    std::cout << "==================================================="
                 "=========\n"
              << what << "\n"
              << "(reproduces " << paper_ref << " of Nagle et al., "
              << "ISCA 1994)\n"
              << "==================================================="
                 "=========\n\n";
}

} // namespace omabench

#endif // OMA_BENCH_COMMON_HH
