/**
 * @file
 * Unit tests for the code walker.
 */

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "os/codewalk.hh"

namespace oma
{
namespace
{

CodeRegion
region(std::uint64_t base, std::uint64_t footprint, double skew = 1.0,
       double run = 12.0, double iters = 4.0)
{
    CodeRegion r;
    r.base = base;
    r.footprint = footprint;
    r.skew = skew;
    r.meanRun = run;
    r.meanIterations = iters;
    return r;
}

TEST(CodeWalker, StaysWithinRegion)
{
    const CodeRegion r = region(0x400000, 16 * 1024);
    CodeWalker walker(r, 1);
    for (int i = 0; i < 50000; ++i) {
        const std::uint64_t pc = walker.step();
        ASSERT_GE(pc, r.base);
        ASSERT_LT(pc, r.base + r.footprint);
        ASSERT_EQ(pc % 4, 0u);
    }
}

TEST(CodeWalker, DeterministicPerSeed)
{
    const CodeRegion r = region(0x400000, 32 * 1024);
    CodeWalker a(r, 7), b(r, 7), c(r, 8);
    bool any_diff = false;
    for (int i = 0; i < 1000; ++i) {
        const std::uint64_t pa = a.step();
        ASSERT_EQ(pa, b.step());
        any_diff |= (pa != c.step());
    }
    EXPECT_TRUE(any_diff);
}

TEST(CodeWalker, MostlySequentialWithinRuns)
{
    const CodeRegion r = region(0x400000, 64 * 1024, 1.0, 16.0, 1.0);
    CodeWalker walker(r, 3);
    std::uint64_t prev = walker.step();
    int sequential = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        const std::uint64_t pc = walker.step();
        if (pc == prev + 4)
            ++sequential;
        prev = pc;
    }
    // Mean run 16 => ~15/16 of steps are sequential.
    EXPECT_GT(double(sequential) / n, 0.8);
}

TEST(CodeWalker, LoopIterationCreatesReuse)
{
    // With heavy iteration the same addresses recur: distinct/total
    // must be far below 1.
    const CodeRegion heavy = region(0x400000, 64 * 1024, 1.0, 16, 10);
    CodeWalker walker(heavy, 5);
    std::set<std::uint64_t> distinct;
    const int n = 40000;
    for (int i = 0; i < n; ++i)
        distinct.insert(walker.step());
    EXPECT_LT(double(distinct.size()) / n, 0.25);

    // Without iteration the stream touches far more distinct code.
    const CodeRegion flat = region(0x400000, 64 * 1024, 1.0, 16, 1);
    CodeWalker once(flat, 5);
    std::set<std::uint64_t> distinct_once;
    for (int i = 0; i < n; ++i)
        distinct_once.insert(once.step());
    EXPECT_GT(distinct_once.size(), distinct.size());
}

TEST(CodeWalker, SkewConcentratesFetches)
{
    auto top_share = [](double skew) {
        CodeWalker walker(region(0, 64 * 1024, skew, 12, 2), 11);
        std::map<std::uint64_t, int> hist;
        for (int i = 0; i < 50000; ++i)
            ++hist[walker.step() / 4096];
        // Share of the 4 hottest pages.
        std::vector<int> counts;
        for (auto &kv : hist)
            counts.push_back(kv.second);
        std::sort(counts.rbegin(), counts.rend());
        int top = 0, total = 0;
        for (std::size_t i = 0; i < counts.size(); ++i) {
            total += counts[i];
            if (i < 4)
                top += counts[i];
        }
        return double(top) / total;
    };
    EXPECT_GT(top_share(1.4), top_share(0.6));
}

TEST(CodePath, SequentialAddresses)
{
    const CodePath path{0x80030000, 100};
    EXPECT_EQ(path.pc(0), 0x80030000u);
    EXPECT_EQ(path.pc(1), 0x80030004u);
    EXPECT_EQ(path.pc(99), 0x80030000u + 99 * 4);
    EXPECT_EQ(path.bytes(), 400u);
}

TEST(CodeWalkerDeath, TinyRegionRejected)
{
    const CodeRegion r = region(0x400000, 32);
    EXPECT_EXIT(CodeWalker(r, 1), testing::ExitedWithCode(1),
                "granule");
}

} // namespace
} // namespace oma
