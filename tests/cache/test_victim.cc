/**
 * @file
 * Tests for the Jouppi-style victim cache.
 */

#include <gtest/gtest.h>

#include "cache/cache.hh"
#include "cache/victim.hh"
#include "support/rng.hh"

namespace oma
{
namespace
{

CacheGeometry
dm(std::uint64_t capacity)
{
    return CacheGeometry(capacity, 16, 1);
}

TEST(VictimCache, ConflictPairPingPongsInTheBuffer)
{
    // Two lines mapping to the same L1 set: with one victim entry
    // every re-reference after warmup is a victim hit, never a
    // memory miss.
    VictimCache cache(dm(1024), 1);
    EXPECT_EQ(cache.access(0x0000), 2); // cold
    EXPECT_EQ(cache.access(0x0400), 2); // cold, displaces 0x0000
    for (int i = 0; i < 10; ++i) {
        EXPECT_EQ(cache.access(0x0000), 1) << i;
        EXPECT_EQ(cache.access(0x0400), 1) << i;
    }
    EXPECT_EQ(cache.stats().misses, 2u);
    EXPECT_EQ(cache.stats().victimHits, 20u);
}

TEST(VictimCache, ZeroEntriesBehavesLikePlainDirectMapped)
{
    VictimCache none(dm(1024), 0);
    CacheParams p;
    p.geom = dm(1024);
    Cache plain(p);
    Rng rng(3);
    for (int i = 0; i < 30000; ++i) {
        const std::uint64_t addr = rng.below(1 << 14) & ~3ULL;
        const int result = none.access(addr);
        const bool hit = plain.access(addr, RefKind::Load);
        EXPECT_EQ(result == 0, hit);
    }
    EXPECT_EQ(none.stats().misses, plain.stats().totalMisses());
    EXPECT_EQ(none.stats().victimHits, 0u);
}

TEST(VictimCache, L1HitsAreDetected)
{
    VictimCache cache(dm(1024), 4);
    cache.access(0x2000);
    EXPECT_EQ(cache.access(0x2000), 0);
    EXPECT_EQ(cache.access(0x200c), 0); // same line
    EXPECT_EQ(cache.stats().l1Hits, 2u);
}

TEST(VictimCache, BufferIsLru)
{
    // One L1 set (64-B cache, 16-B lines = 4 sets; use aligned
    // conflicting addresses on set 0) and a 2-entry buffer.
    VictimCache cache(dm(64), 2);
    cache.access(0x000); // L1: A
    cache.access(0x100); // L1: B, victim: A
    cache.access(0x200); // L1: C, victim: A,B
    cache.access(0x300); // L1: D, victim: B,C (A evicted, LRU)
    EXPECT_EQ(cache.access(0x100), 1); // B still buffered
    EXPECT_EQ(cache.access(0x000), 2); // A is gone
}

TEST(VictimCache, CoverageMetric)
{
    VictimCache cache(dm(1024), 4);
    Rng rng(9);
    for (int i = 0; i < 50000; ++i) {
        // Hot conflicting pairs plus background noise.
        const double u = rng.uniform();
        std::uint64_t addr;
        if (u < 0.45)
            addr = 0x0000 + (i % 2) * 0x400;
        else if (u < 0.9)
            addr = 0x0040 + (i % 2) * 0x800;
        else
            addr = rng.below(1 << 16) & ~15ULL;
        cache.access(addr);
    }
    // Most conflict misses must be absorbed by the buffer.
    EXPECT_GT(cache.stats().victimCoverage(), 0.7);
    EXPECT_EQ(cache.stats().accesses,
              cache.stats().l1Hits + cache.stats().victimHits +
                  cache.stats().misses);
}

TEST(VictimCache, RecoversTwoWayOnBurstyConflictStreams)
{
    // Jouppi's setting: conflicts are *bursty* — a few sets ping-pong
    // at a time (a loop straddling two colliding blocks), then the
    // hot sets move on. There a small buffer approaches 2-way
    // associativity. (With conflicts spread uniformly over all sets
    // a tiny buffer cannot help — that is asserted implicitly by the
    // extension bench's honest result on OS code overlays.)
    Rng rng(17);
    std::vector<std::uint64_t> addrs;
    for (int burst = 0; burst < 600; ++burst) {
        const std::uint64_t set = rng.below(64);
        for (int i = 0; i < 100; ++i) {
            const std::uint64_t conflict = i % 2;
            addrs.push_back(set * 16 + conflict * 1024);
        }
    }

    VictimCache with(dm(1024), 4);
    VictimCache plain(dm(1024), 0);
    CacheParams two_way;
    two_way.geom = CacheGeometry(1024, 16, 2);
    Cache assoc(two_way);
    std::uint64_t victim_misses = 0, assoc_misses = 0, dm_misses = 0;
    for (std::uint64_t addr : addrs) {
        victim_misses += (with.access(addr) == 2);
        dm_misses += (plain.access(addr) == 2);
        assoc_misses += !assoc.access(addr, RefKind::Load);
    }
    EXPECT_LT(victim_misses, dm_misses / 10);
    EXPECT_LT(victim_misses, 2 * assoc_misses + 100);
}

TEST(VictimCacheDeath, RejectsSetAssociativeL1)
{
    EXPECT_EXIT(VictimCache(CacheGeometry(1024, 16, 2), 4),
                testing::ExitedWithCode(1), "direct-mapped");
}

} // namespace
} // namespace oma
