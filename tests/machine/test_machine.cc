/**
 * @file
 * Unit tests for the simulated machine's stall accounting.
 */

#include <gtest/gtest.h>

#include "machine/machine.hh"
#include "os/layout.hh"
#include "support/rng.hh"

namespace oma
{
namespace
{

MemRef
fetch(std::uint64_t addr)
{
    MemRef r;
    r.vaddr = kseg0Base + addr; // unmapped: no TLB involvement
    r.paddr = addr;
    r.kind = RefKind::IFetch;
    r.mode = Mode::Kernel;
    r.mapped = false;
    return r;
}

MemRef
data(std::uint64_t addr, RefKind kind)
{
    MemRef r = fetch(addr);
    r.kind = kind;
    return r;
}

MachineParams
smallMachine()
{
    MachineParams p = MachineParams::decstation3100();
    p.icache.geom = CacheGeometry::fromWords(1024, 4, 1);
    p.dcache.geom = CacheGeometry::fromWords(1024, 4, 1);
    return p;
}

TEST(Machine, BaseCycleAccounting)
{
    Machine machine(smallMachine());
    // Two fetches of the same line: 1 miss, 1 hit.
    machine.observe(fetch(0x100));
    machine.observe(fetch(0x104));
    const StallCounters &s = machine.stalls();
    EXPECT_EQ(s.instructions, 2u);
    // 4-word line: penalty 6 + 3 = 9.
    EXPECT_EQ(s.icacheStall, 9u);
    EXPECT_EQ(machine.cycles(), 2u + 9u);
}

TEST(Machine, MissPenaltyFormula)
{
    MachineParams p = smallMachine();
    EXPECT_EQ(p.missPenalty(CacheGeometry::fromWords(1024, 1, 1)), 6u);
    EXPECT_EQ(p.missPenalty(CacheGeometry::fromWords(1024, 4, 1)), 9u);
    EXPECT_EQ(p.missPenalty(CacheGeometry::fromWords(1024, 16, 1)),
              21u);
    EXPECT_EQ(p.missPenalty(CacheGeometry::fromWords(1024, 32, 1)),
              37u);
}

TEST(Machine, LoadMissChargesDcache)
{
    Machine machine(smallMachine());
    machine.observe(data(0x200, RefKind::Load));
    EXPECT_EQ(machine.stalls().dcacheStall, 9u);
    machine.observe(data(0x200, RefKind::Load));
    EXPECT_EQ(machine.stalls().dcacheStall, 9u); // hit
}

TEST(Machine, StoreMissOnOneWordLineIsFree)
{
    MachineParams p = smallMachine();
    p.dcache.geom = CacheGeometry::fromWords(1024, 1, 1);
    Machine machine(p);
    machine.observe(data(0x300, RefKind::Store));
    EXPECT_EQ(machine.stalls().dcacheStall, 0u);
    // But the written word is now resident.
    EXPECT_TRUE(machine.dcache().probe(0x300));
}

TEST(Machine, StoreMissOnWideLinePaysFetchOnWrite)
{
    Machine machine(smallMachine()); // 4-word lines
    machine.observe(data(0x300, RefKind::Store));
    EXPECT_EQ(machine.stalls().dcacheStall, 9u);
}

TEST(Machine, StoresFeedWriteBuffer)
{
    Machine machine(smallMachine());
    for (int i = 0; i < 16; ++i)
        machine.observe(data(0x0 + 4 * i, RefKind::Store));
    EXPECT_EQ(machine.writeBuffer().stores(), 16u);
}

TEST(Machine, UncachedStoreSkipsCaches)
{
    Machine machine(smallMachine());
    MemRef r;
    r.vaddr = layout::frameBufferBase;
    r.paddr = 0x5000000;
    r.kind = RefKind::Store;
    r.mapped = false;
    machine.observe(r);
    EXPECT_EQ(machine.dcache().stats().totalAccesses(), 0u);
    EXPECT_EQ(machine.writeBuffer().stores(), 1u);
}

TEST(Machine, UncachedLoadChargesFixedPenalty)
{
    MachineParams p = smallMachine();
    Machine machine(p);
    MemRef r;
    r.vaddr = layout::frameBufferBase;
    r.paddr = 0x5000000;
    r.kind = RefKind::Load;
    r.mapped = false;
    machine.observe(r);
    EXPECT_EQ(machine.stalls().dcacheStall, p.uncachedLoad);
}

TEST(Machine, MappedRefsGoThroughTheTlb)
{
    Machine machine(smallMachine());
    MemRef r;
    r.vaddr = 0x1000;
    r.paddr = 0x7000;
    r.asid = 1;
    r.kind = RefKind::Load;
    r.mode = Mode::User;
    r.mapped = true;
    machine.observe(r);
    EXPECT_EQ(machine.mmu().stats().translations, 1u);
    // First touch: page fault recorded, but not counted as stall.
    EXPECT_EQ(machine.stalls().tlbStall, 0u);
    EXPECT_GT(machine.mmu().stats().totalServiceCycles(), 0u);
}

TEST(Machine, BreakdownIdentity)
{
    Machine machine(smallMachine());
    Rng rng(3);
    for (int i = 0; i < 20000; ++i) {
        const std::uint64_t addr = rng.below(1 << 14) & ~3ULL;
        const RefKind kind = static_cast<RefKind>(rng.below(3));
        machine.observe(kind == RefKind::IFetch
                            ? fetch(addr)
                            : data(addr, kind));
    }
    const StallCounters &s = machine.stalls();
    EXPECT_EQ(s.cycles(), machine.cycles());
    const CpiBreakdown b = machine.breakdown(0.25);
    const double instr = double(s.instructions);
    EXPECT_NEAR(b.cpi,
                1.0 + double(s.icacheStall + s.dcacheStall +
                             s.wbStall + s.tlbStall) /
                        instr +
                    0.25,
                1e-9);
    EXPECT_DOUBLE_EQ(b.other, 0.25);
}

TEST(Machine, RunConsumesFromSource)
{
    std::vector<MemRef> refs(500, fetch(0x0));
    VectorTraceSource source(refs);
    Machine machine(smallMachine());
    EXPECT_EQ(machine.run(source, 200), 200u);
    EXPECT_EQ(machine.run(source), 300u);
    EXPECT_EQ(machine.stalls().instructions, 500u);
}

TEST(Machine, Decstation3100Defaults)
{
    const MachineParams p = MachineParams::decstation3100();
    EXPECT_EQ(p.icache.geom.capacityBytes, 64u * 1024);
    EXPECT_EQ(p.icache.geom.lineWords(), 1u);
    EXPECT_EQ(p.icache.geom.assoc, 1u);
    EXPECT_EQ(p.dcache.geom.capacityBytes, 64u * 1024);
    EXPECT_TRUE(p.tlb.geom.fullyAssociative());
    EXPECT_EQ(p.tlb.geom.entries, 64u);
}

} // namespace
} // namespace oma
