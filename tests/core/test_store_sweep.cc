/**
 * @file
 * End-to-end contract of store-backed sweeps: a cold run (fills the
 * store), a warm run (replays from it, record phase skipped), and a
 * resumed run after a mid-sweep kill must all be bitwise identical
 * to a live no-store sweep — at 1 and 4 threads — and corrupt
 * entries must fall back to live simulation, never to wrong data.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>

#include <unistd.h>

#include "core/sweep.hh"
#include "obs/metrics.hh"

namespace oma
{
namespace
{

namespace fs = std::filesystem;

void
expectSameCacheStats(const CacheStats &a, const CacheStats &b,
                     const char *what, std::size_t i)
{
    for (unsigned k = 0; k < numRefKinds; ++k) {
        ASSERT_EQ(a.accesses[k], b.accesses[k]) << what << " " << i;
        ASSERT_EQ(a.misses[k], b.misses[k]) << what << " " << i;
    }
    ASSERT_EQ(a.lineFills, b.lineFills) << what << " " << i;
    ASSERT_EQ(a.writebacks, b.writebacks) << what << " " << i;
    ASSERT_EQ(a.writeThroughWords, b.writeThroughWords)
        << what << " " << i;
    ASSERT_EQ(a.compulsoryMisses, b.compulsoryMisses)
        << what << " " << i;
}

void
expectSameMmuStats(const MmuStats &a, const MmuStats &b, std::size_t i)
{
    ASSERT_EQ(a.translations, b.translations) << "tlb " << i;
    for (unsigned c = 0; c < numMissClasses; ++c) {
        ASSERT_EQ(a.counts[c], b.counts[c]) << "tlb " << i;
        ASSERT_EQ(a.cycles[c], b.cycles[c]) << "tlb " << i;
    }
    ASSERT_EQ(a.asidFlushes, b.asidFlushes) << "tlb " << i;
}

/** Bitwise double equality (== would conflate -0.0 and 0.0). */
bool
sameBits(double a, double b)
{
    return std::memcmp(&a, &b, sizeof a) == 0;
}

void
expectSameSweepResult(const SweepResult &a, const SweepResult &b)
{
    ASSERT_EQ(a.instructions, b.instructions);
    ASSERT_EQ(a.references, b.references);
    ASSERT_EQ(a.icacheCount(), b.icacheCount());
    ASSERT_EQ(a.dcacheCount(), b.dcacheCount());
    ASSERT_EQ(a.tlbCount(), b.tlbCount());
    for (std::size_t i = 0; i < a.icacheCount(); ++i)
        expectSameCacheStats(a.icache(i).stats, b.icache(i).stats,
                             "icache", i);
    for (std::size_t i = 0; i < a.dcacheCount(); ++i)
        expectSameCacheStats(a.dcache(i).stats, b.dcache(i).stats,
                             "dcache", i);
    for (std::size_t i = 0; i < a.tlbCount(); ++i)
        expectSameMmuStats(a.tlb(i).stats, b.tlb(i).stats, i);
    EXPECT_TRUE(sameBits(a.wbCpi, b.wbCpi));
    EXPECT_TRUE(sameBits(a.otherCpi, b.otherCpi));

    const MachineParams mp = MachineParams::decstation3100();
    for (std::size_t i = 0; i < a.icacheCount(); ++i)
        EXPECT_TRUE(
            sameBits(a.icache(i).cpi(mp), b.icache(i).cpi(mp)));
    for (std::size_t i = 0; i < a.dcacheCount(); ++i)
        EXPECT_TRUE(
            sameBits(a.dcache(i).cpi(mp), b.dcache(i).cpi(mp)));
    for (std::size_t i = 0; i < a.tlbCount(); ++i)
        EXPECT_TRUE(sameBits(a.tlb(i).cpi(), b.tlb(i).cpi()));
}

std::vector<CacheGeometry>
cacheSubset()
{
    std::vector<CacheGeometry> geoms;
    for (std::uint64_t kb : {2, 8})
        geoms.push_back(CacheGeometry::fromWords(kb * 1024, 4, 1));
    geoms.push_back(CacheGeometry::fromWords(16 * 1024, 4, 2));
    return geoms;
}

std::vector<TlbGeometry>
tlbSubset()
{
    return {TlbGeometry::fullyAssoc(32), TlbGeometry(128, 2)};
}

ComponentSweep
sweepUnderTest()
{
    return ComponentSweep(cacheSubset(), cacheSubset(), tlbSubset());
}

/** Replay tasks in one sweep: reference machine + every config. */
std::uint64_t
taskCount()
{
    return 1 + 2 * cacheSubset().size() + tlbSubset().size();
}

RunConfig
storeRun(const std::string &dir, unsigned threads)
{
    RunConfig rc;
    rc.references = 60000;
    rc.seed = 42;
    rc.threads = threads;
    rc.storeDir = dir;
    return rc;
}

/** Fresh per-test store directory (tests must not inherit a store
 * from the environment either). */
std::string
freshStoreDir(const std::string &name)
{
    ::unsetenv("OMA_STORE_DIR");
    const std::string dir = testing::TempDir() + "/oma_sweep_store_" +
        name + "." + std::to_string(::getpid());
    fs::remove_all(dir);
    return dir;
}

std::vector<fs::path>
storeEntries(const std::string &dir)
{
    std::vector<fs::path> entries;
    for (const auto &e : fs::recursive_directory_iterator(dir)) {
        if (e.is_regular_file() && e.path().extension() == ".bin")
            entries.push_back(e.path());
    }
    return entries;
}

TEST(StoreSweep, ColdAndWarmRunsMatchTheLiveResultBitwise)
{
    const ComponentSweep sweep = sweepUnderTest();
    for (unsigned threads : {1u, 4u}) {
        SCOPED_TRACE(threads);
        const std::string dir = freshStoreDir("coldwarm");
        const SweepResult live = sweep.run(
            BenchmarkId::Mab, OsKind::Mach, storeRun("", threads));

        obs::Observation cold_obs;
        const SweepResult cold =
            sweep.run(BenchmarkId::Mab, OsKind::Mach,
                      storeRun(dir, threads), &cold_obs);
        expectSameSweepResult(live, cold);
        EXPECT_EQ(cold_obs.metrics.counter("sweep/records"), 1u);
        EXPECT_EQ(cold_obs.metrics.counter("store/trace_hits"), 0u);
        // Everything persisted: the recording plus one shard per task.
        EXPECT_EQ(cold_obs.metrics.counter("store/writes"),
                  1 + taskCount());

        obs::Observation warm_obs;
        const SweepResult warm =
            sweep.run(BenchmarkId::Mab, OsKind::Mach,
                      storeRun(dir, threads), &warm_obs);
        expectSameSweepResult(live, warm);
        // The warm run does zero record-phase work and zero writes.
        EXPECT_EQ(warm_obs.metrics.counter("sweep/records"), 0u);
        EXPECT_EQ(warm_obs.metrics.counter("sweep/record_skips"), 1u);
        EXPECT_EQ(warm_obs.metrics.counter("store/trace_hits"), 1u);
        EXPECT_EQ(warm_obs.metrics.counter("store/hits"),
                  1 + taskCount());
        EXPECT_EQ(warm_obs.metrics.counter("store/misses"), 0u);
        EXPECT_EQ(warm_obs.metrics.counter("store/writes"), 0u);
        fs::remove_all(dir);
    }
}

TEST(StoreSweep, WarmReuseIsThreadCountInvariant)
{
    // Thread count is not part of any fingerprint: a store filled at
    // 1 thread serves a 4-thread run (and vice versa) bitwise.
    const ComponentSweep sweep = sweepUnderTest();
    const std::string dir = freshStoreDir("crossthreads");
    const SweepResult cold = sweep.run(BenchmarkId::Mpeg,
                                       OsKind::Ultrix, storeRun(dir, 1));
    obs::Observation warm_obs;
    const SweepResult warm =
        sweep.run(BenchmarkId::Mpeg, OsKind::Ultrix, storeRun(dir, 4),
                  &warm_obs);
    expectSameSweepResult(cold, warm);
    EXPECT_EQ(warm_obs.metrics.counter("store/hits"), 1 + taskCount());
    fs::remove_all(dir);
}

TEST(StoreSweep, DifferentConfigurationsNeverShareEntries)
{
    // Same store directory, different seed: nothing may be reused.
    const ComponentSweep sweep = sweepUnderTest();
    const std::string dir = freshStoreDir("keyed");
    RunConfig rc = storeRun(dir, 2);
    (void)sweep.run(BenchmarkId::Mab, OsKind::Mach, rc);
    rc.seed = 43;
    obs::Observation observation;
    (void)sweep.run(BenchmarkId::Mab, OsKind::Mach, rc, &observation);
    EXPECT_EQ(observation.metrics.counter("store/hits"), 0u);
    EXPECT_EQ(observation.metrics.counter("sweep/records"), 1u);
    fs::remove_all(dir);
}

TEST(StoreSweep, CorruptEntriesFallBackToLiveSimulation)
{
    const ComponentSweep sweep = sweepUnderTest();
    const std::string dir = freshStoreDir("corrupt");
    const SweepResult live = sweep.run(BenchmarkId::Mab, OsKind::Mach,
                                       storeRun("", 2));
    (void)sweep.run(BenchmarkId::Mab, OsKind::Mach, storeRun(dir, 2));

    // Flip the last byte (payload tail) of every entry: checksums
    // fail, every load quarantines, and the sweep re-simulates.
    const auto entries = storeEntries(dir);
    ASSERT_EQ(entries.size(), 1 + taskCount());
    for (const fs::path &path : entries) {
        std::fstream f(path,
                       std::ios::binary | std::ios::in | std::ios::out);
        f.seekg(-1, std::ios::end);
        char last = 0;
        f.get(last);
        f.seekp(-1, std::ios::end);
        const char flipped = char(last ^ 0x40);
        f.write(&flipped, 1);
    }

    obs::Observation observation;
    const SweepResult recovered =
        sweep.run(BenchmarkId::Mab, OsKind::Mach, storeRun(dir, 2),
                  &observation);
    expectSameSweepResult(live, recovered);
    EXPECT_EQ(observation.metrics.counter("store/quarantined"),
              1 + taskCount());
    EXPECT_EQ(observation.metrics.counter("store/hits"), 0u);
    EXPECT_EQ(observation.metrics.counter("sweep/records"), 1u);

    // The fallback rewrote every entry, so the next run is warm.
    obs::Observation warm_obs;
    const SweepResult warm = sweep.run(
        BenchmarkId::Mab, OsKind::Mach, storeRun(dir, 2), &warm_obs);
    expectSameSweepResult(live, warm);
    EXPECT_EQ(warm_obs.metrics.counter("store/misses"), 0u);
    EXPECT_EQ(warm_obs.metrics.counter("store/hits"), 1 + taskCount());
    fs::remove_all(dir);
}

TEST(StoreSweep, KilledSweepResumesFromPersistedShards)
{
    const ComponentSweep sweep = sweepUnderTest();
    const std::string dir = freshStoreDir("resume");
    const SweepResult live = sweep.run(BenchmarkId::Mab, OsKind::Mach,
                                       storeRun("", 1));

    // Child process: serial store-backed sweep, killed hard after
    // its third completed replay task (each shard is persisted
    // before its progress tick, so the kill point bounds what the
    // store may be missing).
    constexpr std::uint64_t kill_after = 3;
    EXPECT_EXIT(
        {
            obs::Progress progress(
                taskCount(),
                [](std::uint64_t done, std::uint64_t) {
                    if (done >= kill_after)
                        ::_exit(42);
                },
                taskCount());
            obs::Observation observation;
            observation.progress = &progress;
            (void)sweep.run(BenchmarkId::Mab, OsKind::Mach,
                            storeRun(dir, 1), &observation);
        },
        testing::ExitedWithCode(42), "");

    // The kill left a partial store: the recording plus the
    // completed shards, and not the full set.
    const std::size_t partial = storeEntries(dir).size();
    EXPECT_GE(partial, 1 + kill_after);
    EXPECT_LT(partial, 1 + taskCount());

    obs::Observation resumed_obs;
    const SweepResult resumed =
        sweep.run(BenchmarkId::Mab, OsKind::Mach, storeRun(dir, 1),
                  &resumed_obs);
    expectSameSweepResult(live, resumed);
    // The resume skips the record phase and every persisted shard...
    EXPECT_EQ(resumed_obs.metrics.counter("sweep/records"), 0u);
    EXPECT_EQ(resumed_obs.metrics.counter("store/trace_hits"), 1u);
    EXPECT_GE(resumed_obs.metrics.counter("store/hits"),
              1 + kill_after);
    // ...and persists only what the kill lost.
    EXPECT_EQ(resumed_obs.metrics.counter("store/writes"),
              1 + taskCount() - partial);

    // After the resume the store is complete, also for 4 threads.
    obs::Observation warm_obs;
    const SweepResult warm = sweep.run(
        BenchmarkId::Mab, OsKind::Mach, storeRun(dir, 4), &warm_obs);
    expectSameSweepResult(live, warm);
    EXPECT_EQ(warm_obs.metrics.counter("store/misses"), 0u);
    fs::remove_all(dir);
}

} // namespace
} // namespace oma
