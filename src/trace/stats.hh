/**
 * @file
 * Trace-stream statistics.
 *
 * A TraceSink that summarizes a reference stream the way the paper's
 * methodology section characterizes its samples: reference mix,
 * kernel/user split, mapped share, per-address-space breakdown,
 * segment breakdown (kuseg/kseg0/kseg1/kseg2), and footprints
 * (distinct pages and distinct 64-byte lines). Used by the
 * trace_tools example and handy for validating generated workloads.
 */

#ifndef OMA_TRACE_STATS_HH
#define OMA_TRACE_STATS_HH

#include <cstdint>
#include <map>
#include <ostream>
#include <unordered_set>

#include "trace/memref.hh"
#include "trace/source.hh"

namespace oma
{

/** Stream summarizer. */
class TraceStatistics : public TraceSink
{
  public:
    void put(const MemRef &ref) override;

    /** References seen so far. */
    std::uint64_t total() const { return _total; }

    std::uint64_t countOf(RefKind kind) const
    {
        return _byKind[unsigned(kind)];
    }

    /** Instructions = instruction fetches. */
    std::uint64_t instructions() const
    {
        return _byKind[unsigned(RefKind::IFetch)];
    }

    /** Data references per instruction. */
    double
    dataPerInstruction() const
    {
        const std::uint64_t instr = instructions();
        return instr == 0
            ? 0.0
            : double(_total - instr) / double(instr);
    }

    double
    kernelShare() const
    {
        return _total == 0 ? 0.0 : double(_kernel) / double(_total);
    }

    double
    mappedShare() const
    {
        return _total == 0 ? 0.0 : double(_mapped) / double(_total);
    }

    /** Distinct 4-KB pages touched (vaddr-based, ASID-qualified). */
    std::uint64_t pageFootprint() const { return _pages.size(); }

    /** Distinct 64-byte lines touched (paddr-based). */
    std::uint64_t lineFootprint() const { return _lines.size(); }

    /** References per address space. */
    const std::map<std::uint32_t, std::uint64_t> &
    byAsid() const
    {
        return _byAsid;
    }

    /** kuseg / kseg0 / kseg1 / kseg2 reference counts. */
    const std::map<std::string, std::uint64_t> &
    bySegment() const
    {
        return _bySegment;
    }

    /** Human-readable summary. */
    void print(std::ostream &os) const;

  private:
    std::uint64_t _total = 0;
    std::uint64_t _byKind[numRefKinds] = {};
    std::uint64_t _kernel = 0;
    std::uint64_t _mapped = 0;
    std::map<std::uint32_t, std::uint64_t> _byAsid;
    std::map<std::string, std::uint64_t> _bySegment;
    // oma-lint: allow(ordered-results): footprint counters read only
    // size(); never iterated, so traversal order cannot reach results.
    std::unordered_set<std::uint64_t> _pages;
    // oma-lint: allow(ordered-results): footprint counters read only
    // size(); never iterated, so traversal order cannot reach results.
    std::unordered_set<std::uint64_t> _lines;
};

} // namespace oma

#endif // OMA_TRACE_STATS_HH
