/**
 * @file
 * Implementation of component sweeps.
 */

#include "core/sweep.hh"

#include <memory>

#include "obs/export.hh"
#include "store/codec.hh"
#include "support/logging.hh"
#include "support/threadpool.hh"
#include "trace/tracefile.hh"

namespace oma
{

namespace
{

/**
 * Cache parameters for sweep slot @p index of bank @p bank_salt.
 * Every geometry owns a private Rng stream derived from its index, so
 * replacement tie-breaking (Random policy) is a function of the
 * configuration alone, never of which thread replays it or of which
 * other configurations share the run.
 */
CacheParams
sweepCacheParams(const CacheGeometry &geom, std::uint64_t bank_salt,
                 std::size_t index)
{
    CacheParams p;
    p.geom = geom;
    p.seed = mix64((bank_salt << 32) | std::uint64_t(index));
    return p;
}

constexpr std::uint64_t icacheBankSalt = 1;
constexpr std::uint64_t dcacheBankSalt = 2;

/**
 * Fingerprint of everything upstream of the record phase: formats,
 * OS personality, seed, trace length and the complete workload
 * description. Every store key (the recording and each replay shard)
 * extends this base, so any change in provenance keys a fresh entry.
 * RunConfig::userOnly is deliberately absent — the sweep path never
 * consults it.
 */
Fingerprint
sweepBaseKey(const WorkloadParams &workload, OsKind os,
             const RunConfig &run)
{
    Fingerprint fp;
    fp.u64("store.format_version", ArtifactStore::formatVersion);
    fp.u64("trace.format_version", TraceFileHeader::currentVersion);
    fp.str("run.os", osKindName(os));
    fp.u64("run.seed", run.seed);
    fp.u64("run.references", run.references);
    workload.fingerprint(fp);
    return fp;
}

Fingerprint
traceKey(const Fingerprint &base)
{
    Fingerprint key = base;
    key.str("artifact", "trace");
    return key;
}

} // namespace

ComponentSweep::ComponentSweep(std::vector<CacheGeometry> icache_geoms,
                               std::vector<CacheGeometry> dcache_geoms,
                               std::vector<TlbGeometry> tlb_geoms,
                               const MachineParams &reference_machine)
    : _refMachine(reference_machine)
{
    _slots.reserve(icache_geoms.size() + dcache_geoms.size() +
                   tlb_geoms.size());
    for (std::size_t i = 0; i < icache_geoms.size(); ++i)
        _slots.push_back(ComponentSlot::icache(
            sweepCacheParams(icache_geoms[i], icacheBankSalt, i)));
    for (std::size_t d = 0; d < dcache_geoms.size(); ++d)
        _slots.push_back(ComponentSlot::dcache(
            sweepCacheParams(dcache_geoms[d], dcacheBankSalt, d)));
    for (const TlbGeometry &geom : tlb_geoms) {
        TlbParams p;
        p.geom = geom;
        _slots.push_back(ComponentSlot::tlb(p));
    }
}

ComponentSweep::ComponentSweep(std::vector<ComponentSlot> slots,
                               const MachineParams &reference_machine)
    : _slots(std::move(slots)), _refMachine(reference_machine)
{
}

SweepResult
ComponentSweep::run(const WorkloadParams &workload, OsKind os,
                    const RunConfig &run,
                    obs::Observation *observation) const
{
    const std::unique_ptr<ArtifactStore> store =
        ArtifactStore::open(run.storeDir);
    const Fingerprint base = sweepBaseKey(workload, os, run);

    // Phase 1 (serial): capture the stream once. The workload RNG
    // and the OS model advance exactly as in a legacy single-pass
    // run; page-invalidation events land inline in the recording at
    // the index of the reference the OS fired them while producing,
    // which is where every replay applies them. A warm store skips
    // this phase entirely: the decoded recording is byte-identical
    // to what a live record would produce.
    RecordedTrace trace;
    bool have_trace = false;
    if (store != nullptr) {
        std::string payload;
        if (store->get(traceKey(base), payload) &&
            store::decodeTrace(payload, trace)) {
            have_trace = true;
            if (observation != nullptr) {
                observation->metrics.add("store/trace_hits");
                observation->metrics.add("sweep/record_skips");
            }
        }
    }
    if (!have_trace) {
        System system(workload, os, run.seed);
        if (observation != nullptr) {
            obs::Span span(observation->metrics, "sweep/record");
            trace = system.record(run.references);
            observation->metrics.add("sweep/records");
        } else {
            trace = system.record(run.references);
        }
        if (store != nullptr) {
            const std::string payload = store::encodeTrace(trace);
            store->put(traceKey(base), payload);
            if (observation != nullptr)
                obs::exportEncodedTrace(observation->metrics, "trace",
                                        payload.size(), trace.size());
        }
    }

    SweepResult result =
        replayTrace(trace, ThreadPool::resolveThreads(run.threads),
                    observation, store.get(), base);
    if (store != nullptr && observation != nullptr)
        obs::exportArtifactStore(observation->metrics, "store",
                                 *store);
    return result;
}

SweepResult
ComponentSweep::run(const RecordedTrace &trace, unsigned threads,
                    obs::Observation *observation) const
{
    return replayTrace(trace, ThreadPool::resolveThreads(threads),
                       observation, nullptr, Fingerprint());
}

SweepResult
ComponentSweep::replayTrace(const RecordedTrace &trace,
                            unsigned threads,
                            obs::Observation *observation,
                            const ArtifactStore *store,
                            const Fingerprint &base_key) const
{
    // Phase 2 (parallel): replay per consumer. One flat index space
    // across the reference machine and every component slot keeps
    // every lane busy; each index owns its private simulator and
    // writes only its own result slot, so the reduction order is
    // fixed by construction and the results are bitwise identical
    // for any thread count. Every component streams the packed trace
    // columns through its batched replay body (core/component.hh) —
    // the same access body as the scalar path, so batching cannot
    // change any counter. With the store enabled, each task first
    // tries to load its shard (exact integer counters, so a hit
    // reproduces the live slot bit-for-bit) and persists it right
    // after simulating — which is what makes a killed sweep resume
    // at its last completed shard.
    const std::size_t n_slots = _slots.size();

    SweepResult result;
    result.references = trace.size();
    result.otherCpi = trace.otherCpi();
    result._slots = _slots;
    result._stats.resize(n_slots);

    // Per-kind index of each slot: names the store shard and backs
    // the typed per-kind views.
    std::vector<std::size_t> kind_index(n_slots);
    for (std::size_t s = 0; s < n_slots; ++s) {
        const ComponentSlot &slot = _slots[s];
        std::vector<std::size_t> &index =
            result._kindIndex[std::size_t(slot.kind)];
        kind_index[s] = index.size();
        index.push_back(s);
        switch (slot.kind) {
          case ComponentKind::ICache:
            result._icacheGeoms.push_back(
                std::get<CacheParams>(slot.params).geom);
            break;
          case ComponentKind::DCache:
            result._dcacheGeoms.push_back(
                std::get<CacheParams>(slot.params).geom);
            break;
          case ComponentKind::Tlb:
            result._tlbGeoms.push_back(
                std::get<TlbParams>(slot.params).geom);
            break;
          default:
            break;
        }
    }

    // Per-task metric shards: each task writes only its own slot, so
    // the post-loop merge (in task order) is a pure function of the
    // work — never of the schedule or lane count.
    std::vector<obs::MetricRegistry> shards(
        observation != nullptr ? 1 + n_slots : 0);

    const auto loadShard = [&](const Fingerprint &key,
                               auto decode) -> bool {
        if (store == nullptr)
            return false;
        std::string payload;
        return store->get(key, payload) && decode(payload);
    };
    const auto saveShard = [&](const Fingerprint &key,
                               const std::string &payload) {
        if (store != nullptr)
            store->put(key, payload);
    };

    std::uint64_t wb_stall = 0;
    const auto body = [&](std::size_t task) {
        if (task == 0) {
            // Reference machine replay: stall attribution for the
            // configuration-independent CPI components.
            Fingerprint key = base_key;
            key.str("artifact", "shard");
            key.str("component", "machine");
            _refMachine.fingerprint(key);

            store::MachineShard shard;
            if (!loadShard(key, [&](const std::string &p) {
                    return store::decodeMachineShard(p, shard);
                })) {
                Machine machine(_refMachine);
                trace.replay(
                    [&](const MemRef &ref) { machine.observe(ref); },
                    [&](const TraceEvent &e) {
                        machine.mmu().invalidatePage(e.vpn, e.asid,
                                                     e.global);
                    });
                shard.instructions = machine.stalls().instructions;
                shard.icacheStall = machine.stalls().icacheStall;
                shard.dcacheStall = machine.stalls().dcacheStall;
                shard.wbStall = machine.stalls().wbStall;
                shard.tlbStall = machine.stalls().tlbStall;
                shard.wbStores = machine.writeBuffer().stores();
                shard.wbStallCycles =
                    machine.writeBuffer().stallCycles();
                saveShard(key, store::encodeMachineShard(shard));
            }
            result.instructions = shard.instructions;
            wb_stall = shard.wbStall;
            if (observation != nullptr) {
                const StallCounters stalls{
                    shard.instructions, shard.icacheStall,
                    shard.dcacheStall, shard.wbStall, shard.tlbStall};
                obs::exportStallCounters(shards[task], "machine",
                                         stalls);
                obs::exportWriteBufferCounters(shards[task], "wb",
                                               shard.wbStores,
                                               shard.wbStallCycles);
            }
        } else {
            // Component replay: every kind runs through the one
            // replayable-component surface. The shard key reproduces
            // the historical per-kind keys exactly (kind name +
            // per-kind index + parameter fingerprint, plus the TLB
            // handler penalties for TLB slots), so stores written by
            // the three-legged engine stay warm.
            const std::size_t s = task - 1;
            const ComponentSlot &slot = _slots[s];
            Fingerprint key = base_key;
            key.str("artifact", "shard");
            key.str("component", componentKindName(slot.kind));
            key.u64("index", kind_index[s]);
            slot.fingerprint(key);
            if (slot.kind == ComponentKind::Tlb)
                _refMachine.tlbPenalties.fingerprint(key);

            ComponentCounters counters;
            if (!loadShard(key, [&](const std::string &p) {
                    return decodeComponentCounters(p, slot.kind,
                                                   counters);
                })) {
                const std::unique_ptr<ComponentReplayer> component =
                    makeComponent(slot, _refMachine);
                replayComponent(trace, *component);
                counters = component->counters();
                saveShard(key, encodeComponentCounters(counters));
                if (observation != nullptr)
                    shards[task].add("replay/batched_refs",
                                     component->delivered());
            }
            result._stats[s] = counters;
            if (observation != nullptr)
                obs::exportComponentCounters(
                    shards[task], componentKindName(slot.kind),
                    counters);
        }
        if (observation != nullptr && observation->progress != nullptr)
            observation->progress->tick();
    };

    const std::size_t n_tasks = 1 + n_slots;
    if (observation != nullptr) {
        // Run on an explicit pool so its work counters can be
        // exported alongside the component metrics.
        obs::MetricRegistry &m = observation->metrics;
        {
            obs::Span span(m, "sweep/replay");
            ThreadPool pool(threads);
            pool.parallelFor(0, n_tasks, body);
            obs::exportThreadPool(m, "threadpool", pool);
        }
        for (const obs::MetricRegistry &shard : shards)
            m.merge(shard);
        obs::exportRecordedTrace(m, "trace", trace);
        m.add("sweep/replays");
    } else {
        parallelFor(threads, 0, n_tasks, body);
    }

    const double instr =
        double(std::max<std::uint64_t>(1, result.instructions));
    result.wbCpi = double(wb_stall) / instr;
    return result;
}

ComponentCpiTables
ComponentCpiTables::average(const std::vector<SweepResult> &results,
                            const MachineParams &mp)
{
    panicIf(results.empty(), "cannot average zero sweep results");
    ComponentCpiTables tables;
    const SweepResult &first = results.front();
    tables.icacheGeoms = first.icacheGeometries();
    tables.dcacheGeoms = first.dcacheGeometries();
    tables.tlbGeoms = first.tlbGeometries();
    tables.icacheCpi.assign(tables.icacheGeoms.size(), 0.0);
    tables.dcacheCpi.assign(tables.dcacheGeoms.size(), 0.0);
    tables.tlbCpi.assign(tables.tlbGeoms.size(), 0.0);

    tables.victimOptions.resize(first.victimCount());
    for (std::size_t i = 0; i < first.victimCount(); ++i)
        tables.victimOptions[i].params = first.victim(i).params;
    tables.wbOptions.resize(first.writeBufferCount());
    for (std::size_t i = 0; i < first.writeBufferCount(); ++i)
        tables.wbOptions[i].params = first.writeBuffer(i).params;
    tables.hierarchyOptions.resize(first.hierarchyCount());
    for (std::size_t i = 0; i < first.hierarchyCount(); ++i)
        tables.hierarchyOptions[i].params = first.hierarchy(i).params;

    double wb = 0.0, other = 0.0;
    for (const auto &r : results) {
        panicIf(r.icacheCount() != tables.icacheGeoms.size() ||
                    r.dcacheCount() != tables.dcacheGeoms.size() ||
                    r.tlbCount() != tables.tlbGeoms.size() ||
                    r.victimCount() != tables.victimOptions.size() ||
                    r.writeBufferCount() != tables.wbOptions.size() ||
                    r.hierarchyCount() !=
                        tables.hierarchyOptions.size(),
                "sweep results built from different component lists");
        for (std::size_t i = 0; i < tables.icacheCpi.size(); ++i)
            tables.icacheCpi[i] += r.icache(i).cpi(mp);
        for (std::size_t i = 0; i < tables.dcacheCpi.size(); ++i)
            tables.dcacheCpi[i] += r.dcache(i).cpi(mp);
        for (std::size_t i = 0; i < tables.tlbCpi.size(); ++i)
            tables.tlbCpi[i] += r.tlb(i).cpi();
        for (std::size_t i = 0; i < tables.victimOptions.size(); ++i)
            tables.victimOptions[i].cpi += r.victim(i).cpi(mp);
        for (std::size_t i = 0; i < tables.wbOptions.size(); ++i)
            tables.wbOptions[i].cpi += r.writeBuffer(i).cpi();
        for (std::size_t i = 0; i < tables.hierarchyOptions.size();
             ++i)
            tables.hierarchyOptions[i].cpi += r.hierarchy(i).cpi();
        wb += r.wbCpi;
        other += r.otherCpi;
    }
    const double n = double(results.size());
    for (auto &v : tables.icacheCpi)
        v /= n;
    for (auto &v : tables.dcacheCpi)
        v /= n;
    for (auto &v : tables.tlbCpi)
        v /= n;
    for (auto &v : tables.victimOptions)
        v.cpi /= n;
    for (auto &v : tables.wbOptions)
        v.cpi /= n;
    for (auto &v : tables.hierarchyOptions)
        v.cpi /= n;
    // Like the paper's Tables 6/7, the total CPI of an allocation is
    // 1 + TLB + I-cache + D-cache; write-buffer and non-memory
    // stalls are configuration-independent and kept separately.
    tables.baseCpi = 1.0;
    tables.wbCpi = wb / n;
    tables.otherCpi = other / n;
    return tables;
}

} // namespace oma
