/**
 * @file
 * Implementation of text-table formatting.
 */

#include "support/table.hh"

#include <algorithm>
#include <cstdio>

#include "support/logging.hh"

namespace oma
{

TextTable::TextTable(std::vector<std::string> headers)
    : _headers(std::move(headers))
{
    panicIf(_headers.empty(), "TextTable needs at least one column");
}

void
TextTable::addRow(std::vector<std::string> cells)
{
    panicIf(cells.size() != _headers.size(),
            "TextTable row width mismatch");
    _rows.push_back(std::move(cells));
}

void
TextTable::addRule()
{
    _rulesBefore.push_back(_rows.size());
}

void
TextTable::print(std::ostream &os) const
{
    std::vector<std::size_t> width(_headers.size());
    for (std::size_t c = 0; c < _headers.size(); ++c)
        width[c] = _headers[c].size();
    for (const auto &row : _rows)
        for (std::size_t c = 0; c < row.size(); ++c)
            width[c] = std::max(width[c], row[c].size());

    auto print_rule = [&]() {
        for (std::size_t c = 0; c < width.size(); ++c) {
            os << std::string(width[c] + 2, '-');
            if (c + 1 < width.size())
                os << '+';
        }
        os << '\n';
    };

    auto print_row = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            os << ' ' << row[c]
               << std::string(width[c] - row[c].size() + 1, ' ');
            if (c + 1 < row.size())
                os << '|';
        }
        os << '\n';
    };

    print_row(_headers);
    print_rule();
    for (std::size_t r = 0; r < _rows.size(); ++r) {
        if (std::find(_rulesBefore.begin(), _rulesBefore.end(), r) !=
            _rulesBefore.end() && r != 0) {
            print_rule();
        }
        print_row(_rows[r]);
    }
}

void
TextTable::printCsv(std::ostream &os) const
{
    auto print_row = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            if (c)
                os << ',';
            os << row[c];
        }
        os << '\n';
    };
    print_row(_headers);
    for (const auto &row : _rows)
        print_row(row);
}

std::string
fmtFixed(double value, int digits)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", digits, value);
    return buf;
}

std::string
fmtGrouped(std::uint64_t value)
{
    std::string digits = std::to_string(value);
    std::string out;
    const std::size_t n = digits.size();
    for (std::size_t i = 0; i < n; ++i) {
        if (i && (n - i) % 3 == 0)
            out.push_back(',');
        out.push_back(digits[i]);
    }
    return out;
}

std::string
fmtPercent(double value, int digits)
{
    return fmtFixed(value * 100.0, digits) + "%";
}

std::string
fmtKBytes(std::uint64_t bytes)
{
    if (bytes >= 1024 && bytes % 1024 == 0)
        return std::to_string(bytes / 1024) + "-KB";
    return std::to_string(bytes) + "-B";
}

} // namespace oma
