/**
 * @file
 * Unit tests for the set-associative cache simulator.
 */

#include <gtest/gtest.h>

#include "cache/cache.hh"

namespace oma
{
namespace
{

CacheParams
makeParams(std::uint64_t capacity, std::uint64_t line,
           std::uint64_t ways,
           ReplacementPolicy repl = ReplacementPolicy::Lru)
{
    CacheParams p;
    p.geom = CacheGeometry(capacity, line, ways);
    p.repl = repl;
    return p;
}

TEST(Cache, ColdMissThenHit)
{
    Cache cache(makeParams(1024, 16, 1));
    EXPECT_FALSE(cache.access(0x1000, RefKind::Load));
    EXPECT_TRUE(cache.access(0x1000, RefKind::Load));
    // Same line, different word: still a hit.
    EXPECT_TRUE(cache.access(0x100c, RefKind::Load));
    // Next line: miss.
    EXPECT_FALSE(cache.access(0x1010, RefKind::Load));
}

TEST(Cache, DirectMappedConflict)
{
    // 1-KB direct-mapped, 16-B lines: addresses 1 KB apart collide.
    Cache cache(makeParams(1024, 16, 1));
    EXPECT_FALSE(cache.access(0x0000, RefKind::Load));
    EXPECT_FALSE(cache.access(0x0400, RefKind::Load));
    EXPECT_FALSE(cache.access(0x0000, RefKind::Load)); // evicted
}

TEST(Cache, TwoWayHoldsConflictingPair)
{
    Cache cache(makeParams(1024, 16, 2));
    EXPECT_FALSE(cache.access(0x0000, RefKind::Load));
    EXPECT_FALSE(cache.access(0x0400, RefKind::Load));
    EXPECT_TRUE(cache.access(0x0000, RefKind::Load));
    EXPECT_TRUE(cache.access(0x0400, RefKind::Load));
}

TEST(Cache, LruEvictsLeastRecentlyUsed)
{
    // One set, two ways.
    Cache cache(makeParams(32, 16, 2));
    cache.access(0x000, RefKind::Load); // A
    cache.access(0x100, RefKind::Load); // B
    cache.access(0x000, RefKind::Load); // touch A
    cache.access(0x200, RefKind::Load); // C evicts B
    EXPECT_TRUE(cache.probe(0x000));
    EXPECT_FALSE(cache.probe(0x100));
    EXPECT_TRUE(cache.probe(0x200));
}

TEST(Cache, FifoIgnoresHits)
{
    Cache cache(makeParams(32, 16, 2, ReplacementPolicy::Fifo));
    cache.access(0x000, RefKind::Load); // A (first in)
    cache.access(0x100, RefKind::Load); // B
    cache.access(0x000, RefKind::Load); // hit A: FIFO order unchanged
    cache.access(0x200, RefKind::Load); // C evicts A
    EXPECT_FALSE(cache.probe(0x000));
    EXPECT_TRUE(cache.probe(0x100));
    EXPECT_TRUE(cache.probe(0x200));
}

TEST(Cache, RandomReplacementIsDeterministicPerSeed)
{
    auto run = [](std::uint64_t seed) {
        CacheParams p = makeParams(256, 16, 4,
                                   ReplacementPolicy::Random);
        p.seed = seed;
        Cache cache(p);
        Rng rng(1);
        std::uint64_t misses = 0;
        for (int i = 0; i < 10000; ++i) {
            if (!cache.access(rng.below(64) * 16, RefKind::Load))
                ++misses;
        }
        return misses;
    };
    EXPECT_EQ(run(7), run(7));
}

TEST(Cache, ProbeHasNoSideEffects)
{
    Cache cache(makeParams(32, 16, 2));
    cache.access(0x000, RefKind::Load);
    cache.access(0x100, RefKind::Load);
    // Probing A repeatedly must not refresh its LRU position.
    for (int i = 0; i < 5; ++i)
        EXPECT_TRUE(cache.probe(0x000));
    cache.access(0x200, RefKind::Load); // evicts A (still LRU oldest)
    EXPECT_FALSE(cache.probe(0x000));
    const CacheStats &s = cache.stats();
    EXPECT_EQ(s.totalAccesses(), 3u);
}

TEST(Cache, StatsPerKind)
{
    Cache cache(makeParams(1024, 16, 1));
    cache.access(0x0, RefKind::IFetch);
    cache.access(0x0, RefKind::IFetch);
    cache.access(0x40, RefKind::Load);
    cache.access(0x80, RefKind::Store);
    const CacheStats &s = cache.stats();
    EXPECT_EQ(s.accesses[unsigned(RefKind::IFetch)], 2u);
    EXPECT_EQ(s.misses[unsigned(RefKind::IFetch)], 1u);
    EXPECT_EQ(s.accesses[unsigned(RefKind::Load)], 1u);
    EXPECT_EQ(s.misses[unsigned(RefKind::Load)], 1u);
    EXPECT_EQ(s.misses[unsigned(RefKind::Store)], 1u);
    EXPECT_DOUBLE_EQ(s.missRatio(), 0.75);
    EXPECT_DOUBLE_EQ(s.missRatio(RefKind::IFetch), 0.5);
}

TEST(Cache, WriteThroughCountsWords)
{
    Cache cache(makeParams(1024, 16, 1));
    cache.access(0x0, RefKind::Store);
    cache.access(0x0, RefKind::Store);
    cache.access(0x4, RefKind::Store);
    EXPECT_EQ(cache.stats().writeThroughWords, 3u);
    EXPECT_EQ(cache.stats().writebacks, 0u);
}

TEST(Cache, WriteBackCountsEvictions)
{
    CacheParams p = makeParams(32, 16, 1);
    p.write = WritePolicy::WriteBack;
    Cache cache(p);
    cache.access(0x000, RefKind::Store); // dirty A (set 0)
    cache.access(0x010, RefKind::Store); // dirty B (set 1)
    cache.access(0x100, RefKind::Load);  // evicts dirty A
    EXPECT_EQ(cache.stats().writebacks, 1u);
    cache.access(0x110, RefKind::Load); // evicts dirty B
    EXPECT_EQ(cache.stats().writebacks, 2u);
    EXPECT_EQ(cache.stats().writeThroughWords, 0u);
}

TEST(Cache, CleanEvictionHasNoWriteback)
{
    CacheParams p = makeParams(32, 16, 1);
    p.write = WritePolicy::WriteBack;
    Cache cache(p);
    cache.access(0x000, RefKind::Load);
    cache.access(0x100, RefKind::Load); // evicts clean line
    EXPECT_EQ(cache.stats().writebacks, 0u);
}

TEST(Cache, NoWriteAllocateLeavesStoreMissesUncached)
{
    CacheParams p = makeParams(1024, 16, 1);
    p.alloc = AllocPolicy::NoWriteAllocate;
    Cache cache(p);
    EXPECT_FALSE(cache.access(0x0, RefKind::Store));
    EXPECT_FALSE(cache.probe(0x0));
    EXPECT_FALSE(cache.access(0x0, RefKind::Store)); // still missing
    // Loads do allocate.
    EXPECT_FALSE(cache.access(0x0, RefKind::Load));
    EXPECT_TRUE(cache.access(0x0, RefKind::Store));
}

TEST(Cache, CompulsoryMissesCountDistinctLines)
{
    Cache cache(makeParams(64, 16, 1));
    for (int round = 0; round < 3; ++round) {
        for (std::uint64_t line = 0; line < 16; ++line)
            cache.access(line * 16, RefKind::Load);
    }
    // The cache thrashes (16 lines into 4 sets), but only the first
    // round's misses are compulsory.
    EXPECT_EQ(cache.stats().compulsoryMisses, 16u);
    EXPECT_GT(cache.stats().totalMisses(), 16u);
}

TEST(Cache, InvalidateAllForcesMisses)
{
    Cache cache(makeParams(1024, 16, 2));
    cache.access(0x0, RefKind::Load);
    EXPECT_TRUE(cache.probe(0x0));
    cache.invalidateAll();
    EXPECT_FALSE(cache.probe(0x0));
}

TEST(Cache, ResetStatsKeepsContents)
{
    Cache cache(makeParams(1024, 16, 1));
    cache.access(0x0, RefKind::Load);
    cache.resetStats();
    EXPECT_EQ(cache.stats().totalAccesses(), 0u);
    EXPECT_TRUE(cache.access(0x0, RefKind::Load)); // still resident
}

TEST(Cache, LineFillsMatchAllocatedMisses)
{
    Cache cache(makeParams(1024, 16, 1));
    Rng rng(5);
    for (int i = 0; i < 5000; ++i)
        cache.access(rng.below(4096) & ~3ULL, RefKind::Load);
    EXPECT_EQ(cache.stats().lineFills, cache.stats().totalMisses());
}

} // namespace
} // namespace oma
