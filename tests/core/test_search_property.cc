/**
 * @file
 * Property tests on the allocation search: completeness of the
 * enumeration, budget monotonicity, and restriction consistency.
 */

#include <gtest/gtest.h>

#include "core/search.hh"
#include "support/rng.hh"

namespace oma
{
namespace
{

/** Synthetic tables with pseudo-random (but deterministic) CPIs. */
ComponentCpiTables
randomTables(std::uint64_t seed)
{
    ConfigSpace space;
    ComponentCpiTables tables;
    tables.tlbGeoms = space.tlbGeometries();
    tables.icacheGeoms = space.cacheGeometries();
    tables.dcacheGeoms = space.cacheGeometries();
    Rng rng(seed);
    for (std::size_t i = 0; i < tables.tlbGeoms.size(); ++i)
        tables.tlbCpi.push_back(0.001 + 0.2 * rng.uniform());
    for (std::size_t i = 0; i < tables.icacheGeoms.size(); ++i)
        tables.icacheCpi.push_back(0.01 + 0.6 * rng.uniform());
    for (std::size_t i = 0; i < tables.dcacheGeoms.size(); ++i)
        tables.dcacheCpi.push_back(0.01 + 0.6 * rng.uniform());
    return tables;
}

class SearchSeed : public ::testing::TestWithParam<std::uint64_t>
{
  protected:
    ComponentCpiTables tables = randomTables(GetParam());
    AreaModel area;
};

TEST_P(SearchSeed, EnumerationIsComplete)
{
    // rank() must return exactly the combinations whose summed area
    // fits the budget — no more, no fewer.
    const double budget = 150000.0;
    AllocationSearch search(area, budget);
    const auto ranked = search.rank(tables);

    std::size_t expected = 0;
    for (const auto &tlb : tables.tlbGeoms) {
        const double ta = area.tlbArea(tlb);
        for (const auto &ic : tables.icacheGeoms) {
            const double ia = area.cacheArea(ic);
            if (ta + ia > budget)
                continue;
            for (const auto &dc : tables.dcacheGeoms) {
                if (ta + ia + area.cacheArea(dc) <= budget)
                    ++expected;
            }
        }
    }
    EXPECT_EQ(ranked.size(), expected);
}

TEST_P(SearchSeed, BestCpiMonotoneInBudget)
{
    double prev = 1e18;
    for (double budget : {60000.0, 100000.0, 180000.0, 300000.0,
                          600000.0}) {
        AllocationSearch search(area, budget);
        const auto ranked = search.rank(tables);
        if (ranked.empty())
            continue;
        EXPECT_LE(ranked.front().cpi, prev + 1e-12) << budget;
        prev = ranked.front().cpi;
    }
}

TEST_P(SearchSeed, RestrictionIsASubset)
{
    AllocationSearch search(area, 250000.0);
    const auto full = search.rank(tables, 8);
    const auto restricted = search.rank(tables, 2);
    EXPECT_LT(restricted.size(), full.size());
    // Every restricted allocation appears in the full ranking with
    // the same CPI (spot-check the head).
    for (std::size_t i = 0; i < 5 && i < restricted.size(); ++i) {
        bool found = false;
        for (const auto &a : full) {
            if (a.tlb == restricted[i].tlb &&
                a.icache == restricted[i].icache &&
                a.dcache == restricted[i].dcache) {
                EXPECT_NEAR(a.cpi, restricted[i].cpi, 1e-12);
                found = true;
                break;
            }
        }
        EXPECT_TRUE(found) << i;
    }
}

TEST_P(SearchSeed, BestAllocationBeatsEveryFeasibleNeighbour)
{
    // Local optimality spot check: no single-component swap inside
    // the budget improves on rank 1.
    AllocationSearch search(area, 250000.0);
    const auto ranked = search.rank(tables);
    ASSERT_FALSE(ranked.empty());
    const Allocation &best = ranked.front();

    for (std::size_t t = 0; t < tables.tlbGeoms.size(); ++t) {
        const double swapped_area = area.tlbArea(tables.tlbGeoms[t]) +
            area.cacheArea(best.icache) + area.cacheArea(best.dcache);
        if (swapped_area > 250000.0)
            continue;
        const double swapped_cpi = tables.baseCpi + tables.tlbCpi[t] +
            best.icacheCpi + best.dcacheCpi;
        EXPECT_GE(swapped_cpi + 1e-12, best.cpi);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SearchSeed,
                         ::testing::Values(201u, 202u, 203u));

} // namespace
} // namespace oma
