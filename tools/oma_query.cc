/**
 * @file
 * oma_query: command-line client for the oma_serve daemon.
 *
 * Builds one oma-allocation-request-v1 object from flags (defaults
 * are the paper's Table 6 question), sends it — optionally repeated,
 * to exercise the daemon's dedupe path — as NDJSON over the daemon's
 * Unix-domain socket, and prints the answer lines. `--emit` prints
 * the request instead of sending it, which is how CI builds stdin
 * for `oma_serve --once`; `--shutdown` appends the oma-control-v1
 * shutdown line so the daemon saves its run report and exits.
 */

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "api/request.hh"
#include "support/logging.hh"

namespace
{

using namespace oma;

struct QueryOptions
{
    std::string socketPath = "oma_serve.sock";
    api::AllocationRequest request;
    unsigned repeat = 1;
    bool emit = false;
    bool shutdown = false;
    bool shutdownOnly = true; //!< No query flags given, just --shutdown.
};

void
usage()
{
    std::cerr
        << "usage: oma_query [--socket PATH] [--emit] [--shutdown]\n"
        << "                 [--workloads a,b,...] [--os NAME]\n"
        << "                 [--refs N] [--seed N] [--budget RBE]\n"
        << "                 [--strategy exhaustive|annealing]\n"
        << "                 [--anneal-seed N] [--top-k N]\n"
        << "                 [--max-ways N] [--threads N]\n"
        << "                 [--cache-kbytes a,b,...]\n"
        << "                 [--line-words a,b,...]\n"
        << "                 [--cache-ways a,b,...]\n"
        << "                 [--tlb-entries a,b,...]\n"
        << "                 [--tlb-ways a,b,...] [--repeat N]\n"
        << "\n"
        << "Defaults ask the paper's Table 6 question. --emit prints\n"
        << "the request NDJSON instead of connecting; --repeat sends\n"
        << "N identical copies (daemon answers them once).\n";
}

std::vector<std::uint64_t>
parseU64List(const std::string &arg, const std::string &flag)
{
    std::vector<std::uint64_t> values;
    std::size_t start = 0;
    while (start <= arg.size()) {
        std::size_t end = arg.find(',', start);
        if (end == std::string::npos)
            end = arg.size();
        const std::string item = arg.substr(start, end - start);
        fatalIf(item.empty(),
                "oma_query: empty element in " + flag + " list");
        char *tail = nullptr;
        const std::uint64_t v = std::strtoull(item.c_str(), &tail, 10);
        fatalIf(tail == nullptr || *tail != '\0',
                "oma_query: bad number '" + item + "' in " + flag);
        values.push_back(v);
        start = end + 1;
    }
    return values;
}

std::vector<BenchmarkId>
parseWorkloads(const std::string &arg)
{
    std::vector<BenchmarkId> ids;
    std::size_t start = 0;
    while (start <= arg.size()) {
        std::size_t end = arg.find(',', start);
        if (end == std::string::npos)
            end = arg.size();
        const std::string name = arg.substr(start, end - start);
        BenchmarkId id{};
        fatalIf(!api::benchmarkFromName(name, id),
                "oma_query: unknown workload '" + name + "'");
        ids.push_back(id);
        start = end + 1;
    }
    return ids;
}

QueryOptions
parseOptions(int argc, char **argv)
{
    QueryOptions opt;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto value = [&]() -> std::string {
            fatalIf(i + 1 >= argc, "oma_query: " + arg +
                    " requires a value");
            return argv[++i];
        };
        const auto u64 = [&value]() {
            return std::strtoull(value().c_str(), nullptr, 10);
        };
        bool isQuery = true;
        if (arg == "--socket") {
            opt.socketPath = value();
            isQuery = false;
        } else if (arg == "--emit") {
            opt.emit = true;
        } else if (arg == "--shutdown") {
            opt.shutdown = true;
            isQuery = false;
        } else if (arg == "--workloads") {
            opt.request.workloads = parseWorkloads(value());
        } else if (arg == "--os") {
            const std::string name = value();
            fatalIf(!api::osKindFromName(name, opt.request.os),
                    "oma_query: unknown OS '" + name + "'");
        } else if (arg == "--refs") {
            opt.request.references = u64();
        } else if (arg == "--seed") {
            opt.request.seed = u64();
        } else if (arg == "--budget") {
            opt.request.budgetRbe = std::strtod(value().c_str(), nullptr);
        } else if (arg == "--strategy") {
            const std::string name = value();
            fatalIf(!api::strategyFromName(name, opt.request.strategy),
                    "oma_query: unknown strategy '" + name + "'");
        } else if (arg == "--anneal-seed") {
            opt.request.annealing.seed = u64();
        } else if (arg == "--top-k") {
            opt.request.topK = u64();
        } else if (arg == "--max-ways") {
            opt.request.maxCacheWays = u64();
        } else if (arg == "--threads") {
            opt.request.threads = unsigned(u64());
        } else if (arg == "--cache-kbytes") {
            opt.request.space.cacheKBytes =
                parseU64List(value(), arg);
        } else if (arg == "--line-words") {
            opt.request.space.lineWords = parseU64List(value(), arg);
        } else if (arg == "--cache-ways") {
            opt.request.space.cacheWays = parseU64List(value(), arg);
        } else if (arg == "--tlb-entries") {
            opt.request.space.tlbEntries = parseU64List(value(), arg);
        } else if (arg == "--tlb-ways") {
            opt.request.space.tlbWays = parseU64List(value(), arg);
        } else if (arg == "--repeat") {
            opt.repeat = unsigned(u64());
            fatalIf(opt.repeat == 0,
                    "oma_query: --repeat must be positive");
        } else if (arg == "--help" || arg == "-h") {
            usage();
            std::exit(0);
        } else {
            usage();
            fatal("oma_query: unknown option " + arg);
        }
        if (isQuery)
            opt.shutdownOnly = false;
    }
    return opt;
}

void
writeAll(int fd, std::string_view data)
{
    while (!data.empty()) {
        const ssize_t n = ::write(fd, data.data(), data.size());
        if (n > 0) {
            data.remove_prefix(std::size_t(n));
            continue;
        }
        if (errno == EINTR)
            continue;
        fatal(std::string("oma_query: write: ") + std::strerror(errno));
    }
}

std::string
readAll(int fd)
{
    std::string text;
    char buf[4096];
    while (true) {
        const ssize_t n = ::read(fd, buf, sizeof buf);
        if (n > 0) {
            text.append(buf, std::size_t(n));
            continue;
        }
        if (n == 0)
            return text;
        if (errno == EINTR)
            continue;
        fatal(std::string("oma_query: read: ") + std::strerror(errno));
    }
}

} // namespace

int
main(int argc, char **argv)
{
    const QueryOptions opt = parseOptions(argc, argv);

    std::string payload;
    if (!opt.shutdown || !opt.shutdownOnly) {
        const std::string line = api::encodeRequest(opt.request);
        for (unsigned r = 0; r < opt.repeat; ++r) {
            payload += line;
            payload.push_back('\n');
        }
    }
    if (opt.shutdown)
        payload += "{\"schema\":\"oma-control-v1\",\"cmd\":\"shutdown\"}\n";

    if (opt.emit) {
        std::cout << payload;
        return 0;
    }

    fatalIf(opt.socketPath.size() >= sizeof(sockaddr_un{}.sun_path),
            "oma_query: socket path too long: " + opt.socketPath);
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    fatalIf(fd < 0, std::string("oma_query: socket: ") +
            std::strerror(errno));
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::memcpy(addr.sun_path, opt.socketPath.c_str(),
                opt.socketPath.size() + 1);
    // oma-lint: allow(cast-audit): POSIX connect takes the generic
    // sockaddr view of sockaddr_un; sizeof passes the real type.
    if (::connect(fd, reinterpret_cast<const sockaddr *>(&addr),
                  sizeof addr) != 0)
        fatal("oma_query: connect " + opt.socketPath + ": " +
              std::strerror(errno));
    writeAll(fd, payload);
    // Half-close: the daemon answers the whole batch once the
    // request stream ends.
    ::shutdown(fd, SHUT_WR);
    std::cout << readAll(fd);
    ::close(fd);
    return 0;
}
