/**
 * @file
 * Implementation of the design-space allocator.
 */

#include "core/search.hh"

#include <algorithm>
#include <memory>

#include "obs/export.hh"
#include "support/logging.hh"
#include "support/threadpool.hh"

namespace oma
{

std::vector<TlbGeometry>
ConfigSpace::tlbGeometries() const
{
    std::vector<TlbGeometry> geoms;
    for (std::uint64_t entries : tlbEntries) {
        for (std::uint64_t ways : tlbWays) {
            if (ways <= entries)
                geoms.emplace_back(entries, ways);
        }
        if (entries <= tlbFullAssocMax)
            geoms.push_back(TlbGeometry::fullyAssoc(entries));
    }
    return geoms;
}

std::vector<CacheGeometry>
ConfigSpace::cacheGeometries(std::uint64_t max_ways) const
{
    std::vector<CacheGeometry> geoms;
    for (std::uint64_t kb : cacheKBytes) {
        for (std::uint64_t line : lineWords) {
            for (std::uint64_t ways : cacheWays) {
                if (ways > max_ways)
                    continue;
                const CacheGeometry geom =
                    CacheGeometry::fromWords(kb * 1024, line, ways);
                if (geom.capacityBytes < geom.lineBytes * geom.assoc)
                    continue; // needs at least one set
                geoms.push_back(geom);
            }
        }
    }
    return geoms;
}

std::vector<VictimParams>
ConfigSpace::victimConfigs() const
{
    std::vector<VictimParams> configs;
    for (std::uint64_t kb : cacheKBytes) {
        for (std::uint64_t entries : victimEntries) {
            VictimParams p;
            p.l1 = CacheGeometry::fromWords(kb * 1024,
                                            victimLineWords, 1);
            p.entries = entries;
            configs.push_back(p);
        }
    }
    return configs;
}

std::vector<WriteBufferParams>
ConfigSpace::writeBufferConfigs() const
{
    std::vector<WriteBufferParams> configs;
    for (std::uint64_t entries : wbEntries) {
        WriteBufferParams p;
        p.entries = entries;
        p.drainCycles = wbDrainCycles;
        configs.push_back(p);
    }
    return configs;
}

std::vector<HierarchyParams>
ConfigSpace::hierarchyConfigs() const
{
    std::vector<HierarchyParams> configs;
    for (std::uint64_t l2kb : l2KBytes) {
        for (std::uint64_t kb : cacheKBytes) {
            if (kb >= l2kb)
                continue; // an L2 must outsize its L1s
            HierarchyParams p;
            p.l1i.geom = CacheGeometry::fromWords(
                kb * 1024, hierL1LineWords, hierL1Ways);
            p.l1d.geom = p.l1i.geom;
            p.l2.geom = CacheGeometry::fromWords(l2kb * 1024,
                                                 l2LineWords, l2Ways);
            p.hasL2 = true;
            configs.push_back(p);
        }
    }
    return configs;
}

std::vector<ComponentSlot>
ConfigSpace::extensionSlots() const
{
    std::vector<ComponentSlot> slots;
    for (const VictimParams &p : victimConfigs())
        slots.push_back(ComponentSlot::victim(p));
    for (const WriteBufferParams &p : writeBufferConfigs())
        slots.push_back(ComponentSlot::writeBuffer(p));
    for (const HierarchyParams &p : hierarchyConfigs())
        slots.push_back(ComponentSlot::hierarchy(p));
    return slots;
}

ConfigSpace
ConfigSpace::extended()
{
    ConfigSpace space;
    space.victimEntries = {4, 8};
    space.wbEntries = {1, 2, 4, 8};
    space.l2KBytes = {32, 64};
    return space;
}

AllocationSearch::AllocationSearch(const AreaModel &area,
                                   double budget_rbe)
    : _area(area), _budget(budget_rbe)
{
    fatalIf(budget_rbe <= 0, "area budget must be positive");
}

std::vector<Allocation>
AllocationSearch::rank(const ComponentCpiTables &tables,
                       std::uint64_t max_cache_ways, unsigned threads,
                       obs::Observation *observation) const
{
    std::unique_ptr<obs::Span> span;
    if (observation != nullptr)
        span = std::make_unique<obs::Span>(observation->metrics,
                                           "search/rank");

    // Precompute areas once per distinct geometry.
    std::vector<double> tlb_area(tables.tlbGeoms.size());
    for (std::size_t i = 0; i < tables.tlbGeoms.size(); ++i)
        tlb_area[i] = _area.tlbArea(tables.tlbGeoms[i]);
    std::vector<double> i_area(tables.icacheGeoms.size());
    for (std::size_t i = 0; i < tables.icacheGeoms.size(); ++i)
        i_area[i] = _area.cacheArea(tables.icacheGeoms[i]);
    std::vector<double> d_area(tables.dcacheGeoms.size());
    for (std::size_t i = 0; i < tables.dcacheGeoms.size(); ++i)
        d_area[i] = _area.cacheArea(tables.dcacheGeoms[i]);

    // The I-cache axis: every plain I-cache in index order, then
    // every victim-cache option (a direct-mapped L1 plus its CAM
    // buffer, costed as an alternative fetch-side organization).
    // With no victim options this list is exactly the classic
    // I-cache enumeration, so the extension-free emission order —
    // and therefore the stable-sorted ranking, ties included — is
    // unchanged from the three-component search.
    struct IOption
    {
        std::size_t index;   //!< Into icacheGeoms or victimOptions.
        bool isVictim;
        double area;
        double cpi;
    };
    std::vector<IOption> i_options;
    i_options.reserve(tables.icacheGeoms.size() +
                      tables.victimOptions.size());
    for (std::size_t i = 0; i < tables.icacheGeoms.size(); ++i) {
        if (tables.icacheGeoms[i].assoc > max_cache_ways)
            continue;
        i_options.push_back(
            {i, false, i_area[i], tables.icacheCpi[i]});
    }
    for (std::size_t v = 0; v < tables.victimOptions.size(); ++v) {
        const VictimParams &p = tables.victimOptions[v].params;
        const double area = _area.cacheArea(p.l1) +
            _area.victimBufferArea(p.entries, p.l1.lineBytes);
        i_options.push_back(
            {v, true, area, tables.victimOptions[v].cpi});
    }

    // The write-buffer axis: a single free no-op entry when depths
    // were not swept (the classic search), else one entry per depth.
    struct WbOption
    {
        std::uint64_t entries;
        double area;
        double cpi;
    };
    std::vector<WbOption> wb_options;
    if (tables.wbOptions.empty()) {
        wb_options.push_back({0, 0.0, 0.0});
    } else {
        for (const auto &wb : tables.wbOptions)
            wb_options.push_back(
                {wb.params.entries,
                 _area.writeBufferArea(wb.params.entries), wb.cpi});
    }

    // The hierarchy axis: organizations that replace the split I/D
    // pair wholesale (their L1s obey the associativity restriction).
    struct HierOption
    {
        std::size_t index;
        double area;
        double cpi;
    };
    std::vector<HierOption> hier_options;
    for (std::size_t h = 0; h < tables.hierarchyOptions.size(); ++h) {
        const HierarchyParams &p = tables.hierarchyOptions[h].params;
        if (p.l1i.geom.assoc > max_cache_ways ||
            (!p.unified && p.l1d.geom.assoc > max_cache_ways)) {
            continue;
        }
        double area = _area.cacheArea(p.l1i.geom);
        if (!p.unified) {
            area += _area.cacheArea(p.l1d.geom);
            if (p.hasL2)
                area += _area.cacheArea(p.l2.geom);
        }
        hier_options.push_back(
            {h, area, tables.hierarchyOptions[h].cpi});
    }

    // Score one TLB-geometry shard: exactly the serial enumeration
    // restricted to TLB index t, emitting split allocations in
    // (i-option, d, wb) order, then hierarchy allocations in
    // (hierarchy, wb) order.
    const auto score_shard = [&](std::size_t t,
                                 std::vector<Allocation> &shard) {
        for (const IOption &io : i_options) {
            const double ti_area = tlb_area[t] + io.area;
            if (ti_area > _budget)
                continue;
            for (std::size_t d = 0; d < tables.dcacheGeoms.size(); ++d) {
                if (tables.dcacheGeoms[d].assoc > max_cache_ways)
                    continue;
                const double tid_area = ti_area + d_area[d];
                if (tid_area > _budget)
                    continue;
                for (const WbOption &wb : wb_options) {
                    const double area = tid_area + wb.area;
                    if (area > _budget)
                        continue;
                    Allocation a;
                    a.tlb = tables.tlbGeoms[t];
                    if (io.isVictim) {
                        const VictimParams &p =
                            tables.victimOptions[io.index].params;
                        a.icache = p.l1;
                        a.victimEntries = p.entries;
                    } else {
                        a.icache = tables.icacheGeoms[io.index];
                    }
                    a.dcache = tables.dcacheGeoms[d];
                    a.areaRbe = area;
                    a.tlbCpi = tables.tlbCpi[t];
                    a.icacheCpi = io.cpi;
                    a.dcacheCpi = tables.dcacheCpi[d];
                    a.wbEntries = wb.entries;
                    a.wbCpi = wb.cpi;
                    a.cpi = tables.baseCpi + a.tlbCpi + a.icacheCpi +
                        a.dcacheCpi + a.wbCpi;
                    shard.push_back(a);
                }
            }
        }
        for (const HierOption &ho : hier_options) {
            const double th_area = tlb_area[t] + ho.area;
            if (th_area > _budget)
                continue;
            for (const WbOption &wb : wb_options) {
                const double area = th_area + wb.area;
                if (area > _budget)
                    continue;
                const HierarchyParams &p =
                    tables.hierarchyOptions[ho.index].params;
                Allocation a;
                a.tlb = tables.tlbGeoms[t];
                a.icache = p.l1i.geom;
                a.dcache = p.unified ? p.l1i.geom : p.l1d.geom;
                a.hasL2 = p.hasL2 && !p.unified;
                a.unified = p.unified;
                if (a.hasL2)
                    a.l2 = p.l2.geom;
                a.areaRbe = area;
                a.tlbCpi = tables.tlbCpi[t];
                a.hierarchyCpi = ho.cpi;
                a.wbEntries = wb.entries;
                a.wbCpi = wb.cpi;
                a.cpi = tables.baseCpi + a.tlbCpi + a.hierarchyCpi +
                    a.wbCpi;
                shard.push_back(a);
            }
        }
    };

    // Concatenating the shards in TLB order reproduces the serial
    // (t, i, d) emission order, so the stable sort below sees the
    // same sequence — and breaks CPI ties identically — no matter
    // how many lanes scored the shards.
    std::vector<std::vector<Allocation>> shards(tables.tlbGeoms.size());
    parallelFor(threads, 0, shards.size(), [&](std::size_t t) {
        score_shard(t, shards[t]);
        if (observation != nullptr &&
            observation->progress != nullptr)
            observation->progress->tick();
    });

    std::vector<Allocation> out;
    std::size_t total = 0;
    for (const auto &shard : shards)
        total += shard.size();
    out.reserve(total);
    for (auto &shard : shards)
        out.insert(out.end(), shard.begin(), shard.end());

    std::stable_sort(out.begin(), out.end(),
                     [](const Allocation &x, const Allocation &y) {
                         return x.cpi < y.cpi;
                     });
    for (std::size_t r = 0; r < out.size(); ++r)
        out[r].rank = r + 1;

    if (observation != nullptr) {
        obs::MetricRegistry &m = observation->metrics;
        std::uint64_t eligible_d = 0;
        for (const CacheGeometry &g : tables.dcacheGeoms)
            eligible_d += g.assoc <= max_cache_ways;
        m.add("search/shards", shards.size());
        m.add("search/candidates",
              tables.tlbGeoms.size() *
                  (i_options.size() * eligible_d +
                   hier_options.size()) *
                  wb_options.size());
        m.add("search/in_budget", out.size());
        obs::exportRanking(m, out);
    }
    return out;
}

} // namespace oma
