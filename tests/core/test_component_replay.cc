/**
 * @file
 * Differential harness for the replayable-component concept
 * (core/component.hh): for every component kind — I-cache, D-cache,
 * TLB, victim cache, write buffer, hierarchy — the chunked
 * replayComponent() path must be bitwise-identical to the scalar
 * replayComponentScalar() path, on recorded System traces and on
 * synthetic traces with events pinned at chunk seams. End to end, a
 * heterogeneous ComponentSweep must be thread-count invariant and a
 * warm artifact-store rerun must reproduce the cold run for every
 * kind. Also pins the component kind names (store keys and metric
 * prefixes depend on them) and the counters codec's kind framing.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include <unistd.h>

#include "core/component.hh"
#include "core/sweep.hh"
#include "support/rng.hh"
#include "tlb/mips_va.hh"
#include "workload/system.hh"

namespace oma
{
namespace
{

/** Byte-exact counters comparison through the store encoding: the
 * codec serializes every field of every alternative, so encoded
 * equality is field-for-field equality. */
void
expectSameCounters(const ComponentCounters &a,
                   const ComponentCounters &b)
{
    ASSERT_EQ(a.index(), b.index());
    EXPECT_EQ(encodeComponentCounters(a), encodeComponentCounters(b));
}

/** One slot of every kind, shaped so each exercises its filter:
 * small enough to miss, set-associative and direct-mapped, an L2
 * that actually captures traffic. */
std::vector<ComponentSlot>
allKindSlots()
{
    std::vector<ComponentSlot> slots;
    CacheParams cache;
    cache.geom = CacheGeometry::fromWords(8 * 1024, 4, 2);
    slots.push_back(ComponentSlot::icache(cache));
    slots.push_back(ComponentSlot::dcache(cache));
    TlbParams tlb;
    tlb.geom = TlbGeometry(64, 2);
    slots.push_back(ComponentSlot::tlb(tlb));
    VictimParams victim;
    victim.l1 = CacheGeometry::fromWords(4 * 1024, 4, 1);
    victim.entries = 4;
    slots.push_back(ComponentSlot::victim(victim));
    WriteBufferParams wb;
    wb.entries = 2;
    slots.push_back(ComponentSlot::writeBuffer(wb));
    HierarchyParams split;
    split.l1i.geom = CacheGeometry::fromWords(4 * 1024, 4, 2);
    split.l1d.geom = CacheGeometry::fromWords(2 * 1024, 4, 2);
    split.l2.geom = CacheGeometry::fromWords(16 * 1024, 8, 4);
    split.hasL2 = true;
    slots.push_back(ComponentSlot::hierarchy(split));
    HierarchyParams unified;
    unified.l1i.geom = CacheGeometry::fromWords(8 * 1024, 4, 2);
    unified.unified = true;
    slots.push_back(ComponentSlot::hierarchy(unified));
    return slots;
}

void
expectScalarMatchesChunked(const RecordedTrace &trace)
{
    const MachineParams mp = MachineParams::decstation3100();
    for (const ComponentSlot &slot : allKindSlots()) {
        SCOPED_TRACE(slot.describe());
        const auto chunked = makeComponent(slot, mp);
        const auto scalar = makeComponent(slot, mp);
        EXPECT_EQ(replayComponent(trace, *chunked), trace.size());
        EXPECT_EQ(replayComponentScalar(trace, *scalar),
                  trace.size());
        EXPECT_EQ(chunked->delivered(), scalar->delivered());
        expectSameCounters(scalar->counters(), chunked->counters());
    }
}

TEST(ComponentReplay, ScalarMatchesChunkedOnRecordedTraces)
{
    for (OsKind os : {OsKind::Ultrix, OsKind::Mach}) {
        System system(benchmarkParams(BenchmarkId::Mpeg), os, 42);
        const RecordedTrace trace = system.record(90000);
        // Without invalidation events the TLB leg's event slicing is
        // proven only vacuously.
        ASSERT_FALSE(trace.events().empty());
        expectScalarMatchesChunked(trace);
    }
}

TEST(ComponentReplay, ScalarMatchesChunkedWithEventsAtChunkSeams)
{
    // Synthetic stream spanning chunk seams with an uneven tail;
    // events pinned before the first reference, at both sides of
    // every seam, and trailing past the end (must never fire).
    // Unconstrained vaddrs also exercise the kseg1 filters.
    Rng rng(17);
    RecordedTrace trace;
    const std::uint64_t n = 2 * RecordedTrace::chunkRefs + 137;
    trace.recordInvalidation(1, 0, false);
    for (std::uint64_t i = 0; i < n; ++i) {
        MemRef r;
        r.vaddr = rng.next() & 0xffffffff;
        r.paddr = rng.next() & 0x3fffffff;
        r.asid = std::uint32_t(rng.below(4));
        r.kind = static_cast<RefKind>(rng.below(3));
        r.mode = static_cast<Mode>(rng.below(2));
        r.mapped = rng.chance(0.8);
        const std::uint64_t c = RecordedTrace::chunkRefs;
        if (i % c == 0 || i % c == c - 1)
            trace.recordInvalidation(vpnOf(r.vaddr), r.asid,
                                     rng.chance(0.2));
        trace.append(r);
    }
    trace.recordInvalidation(1, 1, false); // trailing: must not fire
    expectScalarMatchesChunked(trace);
}

void
expectSameHeterogeneousResults(const SweepResult &a,
                               const SweepResult &b)
{
    ASSERT_EQ(a.componentCount(), b.componentCount());
    ASSERT_EQ(a.instructions, b.instructions);
    for (std::size_t i = 0; i < a.icacheCount(); ++i)
        expectSameCounters(ComponentCounters(a.icache(i).stats),
                           ComponentCounters(b.icache(i).stats));
    for (std::size_t i = 0; i < a.dcacheCount(); ++i)
        expectSameCounters(ComponentCounters(a.dcache(i).stats),
                           ComponentCounters(b.dcache(i).stats));
    for (std::size_t i = 0; i < a.tlbCount(); ++i)
        expectSameCounters(ComponentCounters(a.tlb(i).stats),
                           ComponentCounters(b.tlb(i).stats));
    for (std::size_t i = 0; i < a.victimCount(); ++i)
        expectSameCounters(ComponentCounters(a.victim(i).stats),
                           ComponentCounters(b.victim(i).stats));
    for (std::size_t i = 0; i < a.writeBufferCount(); ++i)
        expectSameCounters(
            ComponentCounters(a.writeBuffer(i).stats),
            ComponentCounters(b.writeBuffer(i).stats));
    for (std::size_t i = 0; i < a.hierarchyCount(); ++i)
        expectSameCounters(ComponentCounters(a.hierarchy(i).stats),
                           ComponentCounters(b.hierarchy(i).stats));
}

TEST(ComponentReplay, HeterogeneousSweepIsThreadCountInvariant)
{
    const ComponentSweep sweep(allKindSlots());
    System system(benchmarkParams(BenchmarkId::Mab), OsKind::Mach, 42);
    const RecordedTrace trace = system.record(60000);
    const SweepResult serial = sweep.run(trace, 1);
    expectSameHeterogeneousResults(serial, sweep.run(trace, 4));

    // And against the component-level scalar replays: the sweep adds
    // nothing beyond per-slot replayComponent().
    ASSERT_EQ(serial.victimCount(), 1u);
    ASSERT_EQ(serial.writeBufferCount(), 1u);
    ASSERT_EQ(serial.hierarchyCount(), 2u);
    const MachineParams mp = MachineParams::decstation3100();
    const std::vector<ComponentSlot> slots = allKindSlots();
    for (std::size_t s = 0; s < slots.size(); ++s) {
        SCOPED_TRACE(slots[s].describe());
        const auto scalar = makeComponent(slots[s], mp);
        EXPECT_EQ(replayComponentScalar(trace, *scalar),
                  trace.size());
        const ComponentCounters expected = scalar->counters();
        switch (slots[s].kind) {
          case ComponentKind::ICache:
            expectSameCounters(
                expected, ComponentCounters(serial.icache(0).stats));
            break;
          case ComponentKind::DCache:
            expectSameCounters(
                expected, ComponentCounters(serial.dcache(0).stats));
            break;
          case ComponentKind::Tlb:
            expectSameCounters(
                expected, ComponentCounters(serial.tlb(0).stats));
            break;
          case ComponentKind::Victim:
            expectSameCounters(
                expected, ComponentCounters(serial.victim(0).stats));
            break;
          case ComponentKind::WriteBuffer:
            expectSameCounters(
                expected,
                ComponentCounters(serial.writeBuffer(0).stats));
            break;
          case ComponentKind::Hierarchy:
            expectSameCounters(
                expected,
                ComponentCounters(
                    serial.hierarchy(s == slots.size() - 1 ? 1 : 0)
                        .stats));
            break;
        }
    }
}

TEST(ComponentReplay, WarmStoreReproducesColdForEveryKind)
{
    // Cold run simulates live and persists one shard per component;
    // the warm rerun must decode every extension kind's shard (zero
    // store misses) and reproduce the cold counters bitwise, at a
    // different thread count.
    ComponentSweep sweep(
        {CacheGeometry::fromWords(4 * 1024, 4, 2)},
        {CacheGeometry::fromWords(4 * 1024, 4, 2)},
        {TlbGeometry::fullyAssoc(32)});
    for (const ComponentSlot &slot : allKindSlots())
        sweep.addComponent(slot);

    RunConfig rc;
    rc.references = 50000;
    rc.seed = 42;
    rc.threads = 1;
    ::unsetenv("OMA_STORE_DIR");
    rc.storeDir = testing::TempDir() + "/oma_component_store." +
        std::to_string(::getpid());
    std::filesystem::remove_all(rc.storeDir);

    const SweepResult cold =
        sweep.run(BenchmarkId::Mpeg, OsKind::Mach, rc);
    rc.threads = 4;
    obs::Observation warm_obs;
    const SweepResult warm =
        sweep.run(BenchmarkId::Mpeg, OsKind::Mach, rc, &warm_obs);
    expectSameHeterogeneousResults(cold, warm);
    EXPECT_EQ(warm_obs.metrics.counter("store/misses"), 0u);
    EXPECT_EQ(warm_obs.metrics.counter("sweep/records"), 0u);
    std::filesystem::remove_all(rc.storeDir);
}

TEST(ComponentReplay, KindNamesArePinned)
{
    // Store keys and metric prefixes embed these names; changing one
    // orphans stored shards and breaks the run-report counter gate.
    EXPECT_STREQ(componentKindName(ComponentKind::ICache), "icache");
    EXPECT_STREQ(componentKindName(ComponentKind::DCache), "dcache");
    EXPECT_STREQ(componentKindName(ComponentKind::Tlb), "tlb");
    EXPECT_STREQ(componentKindName(ComponentKind::Victim), "victim");
    EXPECT_STREQ(componentKindName(ComponentKind::WriteBuffer),
                 "wbuffer");
    EXPECT_STREQ(componentKindName(ComponentKind::Hierarchy), "l2");
}

TEST(ComponentReplay, CountersCodecFramesByKind)
{
    VictimStats v;
    v.accesses = 100;
    v.l1Hits = 80;
    v.victimHits = 5;
    v.misses = 15;
    const std::string payload =
        encodeComponentCounters(ComponentCounters(v));

    ComponentCounters out;
    ASSERT_TRUE(decodeComponentCounters(payload,
                                        ComponentKind::Victim, out));
    expectSameCounters(ComponentCounters(v), out);

    // The payload carries no kind tag — the store key does — so a
    // payload of the wrong kind must fail the decoder's framing, not
    // silently misinterpret.
    EXPECT_FALSE(decodeComponentCounters(
        payload, ComponentKind::WriteBuffer, out));
    EXPECT_FALSE(decodeComponentCounters(
        payload.substr(0, payload.size() - 1),
        ComponentKind::Victim, out));
}

} // namespace
} // namespace oma
