/**
 * @file
 * Implementation of the Mach 3.0 structure model.
 */

#include "os/mach.hh"

#include "support/logging.hh"

namespace oma
{

namespace
{

CodeRegion
trapCode()
{
    CodeRegion code;
    code.base = layout::kTrapTextBase;
    code.footprint = 8 * 1024;
    code.meanRun = 20.0;
    code.meanIterations = 1.5;
    return code;
}

DataBehavior
trapData()
{
    DataBehavior d;
    d.loadPerInstr = 0.15;
    d.storePerInstr = 0.10;
    d.stackBase = layout::kStackBase;
    d.stackBytes = 4 * 1024;
    d.stackFrac = 0.6;
    d.wsBase = layout::kDataBase;
    d.wsBytes = 32 * 1024;
    d.wsSkew = 1.35;
    return d;
}

CodeRegion
ipcCode(const MachParams &p)
{
    CodeRegion code;
    code.base = layout::kIpcTextBase;
    code.footprint = 20 * 1024;
    code.meanRun = 16.0;
    code.meanIterations = 1.5;
    (void)p;
    return code;
}

DataBehavior
ipcData(const MachParams &p)
{
    DataBehavior d;
    d.loadPerInstr = p.svcLoadPerInstr;
    d.storePerInstr = p.svcStorePerInstr;
    d.stackBase = layout::kStackBase;
    d.stackBytes = 8 * 1024;
    d.stackFrac = 0.30;
    d.wsBase = layout::kDataBase;
    d.wsBytes = p.kIpcWsBytes;
    d.wsSkew = 1.35;
    // Port name spaces, pmaps and other dynamically allocated kernel
    // structures live in mapped kseg2.
    d.ws2Frac = p.kseg2Frac;
    d.ws2Base = layout::kseg2DynBase;
    d.ws2Bytes = p.kseg2WsBytes;
    d.ws2Skew = 1.2;
    return d;
}

CodeRegion
serverCode(const MachParams &p)
{
    CodeRegion code;
    code.base = layout::userTextBase;
    code.footprint = p.serverCodeFootprint;
    code.skew = 1.25;
    code.meanRun = 16.0;
    code.meanIterations = 4.0;
    return code;
}

DataBehavior
serverData(const MachParams &p)
{
    DataBehavior d;
    d.loadPerInstr = p.svcLoadPerInstr;
    d.storePerInstr = p.svcStorePerInstr;
    d.stackBase = layout::userStackBase;
    d.stackBytes = 8 * 1024;
    d.stackFrac = 0.30;
    d.wsBase = layout::userWsBase;
    d.wsBytes = p.serverWsBytes;
    d.wsSkew = 1.4;
    return d;
}

CodeRegion
xCode(const MachParams &p)
{
    CodeRegion code;
    code.base = layout::userTextBase;
    code.footprint = p.xCodeFootprint;
    code.skew = 1.3;
    code.meanRun = 14.0;
    code.meanIterations = 4.0;
    return code;
}

DataBehavior
xData(const MachParams &p)
{
    DataBehavior d;
    d.loadPerInstr = 0.22;
    d.storePerInstr = 0.12;
    d.stackBase = layout::userStackBase;
    d.wsBase = layout::userWsBase;
    d.wsBytes = p.xWsBytes;
    d.wsSkew = 1.4;
    return d;
}

CodeRegion
pagerCode()
{
    CodeRegion code;
    code.base = layout::userTextBase;
    code.footprint = 24 * 1024;
    code.meanRun = 12.0;
    code.meanIterations = 2.0;
    return code;
}

DataBehavior
pagerData()
{
    DataBehavior d;
    d.loadPerInstr = 0.20;
    d.storePerInstr = 0.10;
    d.stackBase = layout::userStackBase;
    d.wsBase = layout::userWsBase;
    d.wsBytes = 64 * 1024;
    return d;
}

CodeRegion
emulCode()
{
    CodeRegion code;
    code.base = layout::emulTextBase;
    code.footprint = 12 * 1024;
    code.meanRun = 16.0;
    code.meanIterations = 1.5;
    return code;
}

DataBehavior
emulData()
{
    DataBehavior d;
    d.loadPerInstr = 0.18;
    d.storePerInstr = 0.14; // marshalling writes
    d.stackBase = layout::userStackBase;
    d.stackBytes = 4 * 1024;
    d.stackFrac = 0.4;
    d.wsBase = layout::emulMsgBufBase;
    d.wsBytes = 16 * 1024;
    return d;
}

} // namespace

MachModel::MachModel(std::uint64_t seed, const MachParams &params)
    : OsModel(seed), _p(params), _rng(mix64(seed ^ 0x3ac4)),
      _serverSpace(layout::bsdServerAsid, seed),
      _pagerSpace(layout::pagerAsid, seed),
      _trap("mach.trap", _kernelSpace, Mode::Kernel, trapCode(),
            trapData(), seed ^ 11),
      _ipc("mach.ipc", _kernelSpace, Mode::Kernel, ipcCode(_p),
           ipcData(_p), seed ^ 12),
      _server("bsd-server", _serverSpace, Mode::User, serverCode(_p),
              serverData(_p), seed ^ 13),
      _x("xserver", _xSpace, Mode::User, xCode(_p), xData(_p),
         seed ^ 14),
      _pager("pager", _pagerSpace, Mode::User, pagerCode(), pagerData(),
             seed ^ 15)
{
    _trapPath = {layout::kTrapTextBase, _p.trapInstr};
    _sendPath = {layout::kIpcTextBase, _p.kernelSendInstr};
    _replyPath = {layout::kIpcTextBase + 0x1000, _p.kernelReplyInstr};
    _cswitchPath = {layout::kTrapTextBase + 0x1000, _p.cswitchInstr};
    _timerPath = {layout::kTimerTextBase, _p.timerInstr};
    _emulCallPath = {layout::emulTextBase, _p.emulCallInstr};
    _emulRetPath = {layout::emulTextBase + 0x800, _p.emulRetInstr};
    _stubInPath = {layout::userTextBase + 0x10000, _p.serverStubInInstr};
    _stubOutPath = {layout::userTextBase + 0x10800,
                    _p.serverStubOutInstr};
    _xStubPath = {layout::userTextBase + 0x10000, _p.serverStubInInstr};

    _serverSpace.addLinearSegment(layout::userTextBase,
                                  _p.serverCodeFootprint + 0x12000);
    _pagerSpace.addLinearSegment(layout::userTextBase, 32 * 1024);

    // Decomposed small-granularity servers, one address space each.
    for (unsigned i = 0; i < _p.extraApiServers; ++i) {
        const std::uint32_t asid = layout::extraServerAsid + i;
        fatalIf(asid > 63, "too many decomposed API servers");
        _extraSpaces.push_back(
            std::make_unique<AddressSpace>(asid, seed));
        _extraSpaces.back()->addLinearSegment(layout::userTextBase,
                                              48 * 1024);
        CodeRegion code;
        code.base = layout::userTextBase;
        code.footprint = 24 * 1024;
        code.skew = 1.25;
        code.meanRun = 16.0;
        code.meanIterations = 2.0;
        DataBehavior data;
        data.loadPerInstr = _p.svcLoadPerInstr;
        data.storePerInstr = _p.svcStorePerInstr;
        data.stackBase = layout::userStackBase;
        data.wsBase = layout::userWsBase;
        data.wsBytes = 48 * 1024;
        data.wsSkew = 1.3;
        _extraServers.push_back(std::make_unique<Component>(
            "api-server-" + std::to_string(i), *_extraSpaces.back(),
            Mode::User, code, data, seed ^ (0x100 + i)));
    }
}

void
MachModel::attachApp(AddressSpace &app_space, const DataBehavior &app_data)
{
    // The emulation library is mapped (shared, read-only text) into
    // every UNIX process's address space.
    Segment emul_seg;
    emul_seg.base = layout::emulTextBase;
    emul_seg.size = 64 * 1024;
    emul_seg.shareKey = layout::emulShareKey;
    emul_seg.linear = true;
    app_space.addSharedSegment(emul_seg);

    // Frame memory is VM-shared with the X server (the rewritten X11
    // transport of [Ginsberg93]) instead of copied down a socket —
    // only in the no-socket ablation variant.
    if (!_p.xViaBsdServer && app_data.streamBytes >= pageBytes) {
        app_space.addSharedSegment({app_data.streamBase,
                                    app_data.streamBytes,
                                    layout::frameShareKey});
        _xSpace.addSharedSegment({layout::xShareBase,
                                  app_data.streamBytes,
                                  layout::frameShareKey});
    }
    _appStreamBytes = app_data.streamBytes;

    _emul = std::make_unique<Component>("emul-lib", app_space,
                                        Mode::User, emulCode(),
                                        emulData(), _seed ^ 16);
}

std::uint64_t
MachModel::svcBodyInstr(ServiceKind kind)
{
    std::uint64_t mean = 0;
    switch (kind) {
      case ServiceKind::FileRead:
      case ServiceKind::FileWrite:
        mean = _p.svcFileInstr;
        break;
      case ServiceKind::Stat:
        mean = _p.svcStatInstr;
        break;
      case ServiceKind::Ipc:
        mean = _p.svcIpcInstr;
        break;
    }
    return mean - mean / 4 + _rng.below(mean / 2 + 1);
}

std::uint64_t
MachModel::serverBufAddr(std::uint64_t file_offset) const
{
    return layout::serverBufBase + file_offset % _p.serverBufBytes;
}

void
MachModel::transfer(AddressSpace &src_space, std::uint64_t src_base,
                    AddressSpace &dst_space, std::uint64_t dst_base,
                    std::uint64_t bytes, TraceSink &sink)
{
    if (bytes < _p.oolThresholdBytes) {
        _ipc.copyLoop(src_space, src_base, dst_space, dst_base, bytes,
                      sink);
        return;
    }
    // Out-of-line transfer: the kernel walks vm_map entries and
    // rewrites PTEs — a short code path plus mapped kernel stores,
    // no data movement. The receiver faults pages in lazily as it
    // touches them (its own later references).
    _ipc.runPath({layout::kIpcTextBase + 0x3000, 300}, sink);
    const std::uint64_t pages = (bytes + pageBytes - 1) / pageBytes;
    for (std::uint64_t page = 0; page < pages; ++page) {
        const std::uint64_t pte_va = layout::kseg2DynBase + 0x8000 +
            ((dst_base / pageBytes + page) % 1024) * 4;
        sink.put(_ipc.fetchRef(layout::kIpcTextBase + 0x3400 +
                               (page % 8) * 4));
        sink.put(_ipc.dataRef(_kernelSpace, pte_va, true));
    }
    (void)src_base;
}

void
MachModel::invokeService(Component &caller, const ServiceRequest &req,
                         TraceSink &sink)
{
    panicIf(!_emul, "MachModel::attachApp must run before services");

    // --- call path (~1000 instructions; Figure 2 steps 1-4) ---
    _trap.runPath(_trapPath, sink);        // (1) kernel detects, bounces
    _emul->runPath(_emulCallPath, sink);   // (2,3) emulation library
    _ipc.runPath(_sendPath, sink);         // (4) kernel carries the RPC
    _trap.runPath(_cswitchPath, sink);     // switch to the BSD server
    _server.runPath(_stubInPath, sink);    // server-side stub unpack

    // --- the service itself (common 4.3BSD-derived code) ---
    _server.run(svcBodyInstr(req.kind), sink);
    if (req.kind == ServiceKind::FileRead ||
        req.kind == ServiceKind::FileWrite) {
        // Mapped-file handling in the server plus the vm_map traffic
        // it generates through the kernel.
        _server.run(_p.serverFileOverheadInstr, sink);
        _ipc.runPath({layout::kIpcTextBase + 0x2000, 400}, sink);
        if (_rng.chance(_p.extraRpcProb)) {
            // Second RPC round: memory-object / name traffic.
            _ipc.runPath(_sendPath, sink);
            _trap.runPath(_cswitchPath, sink);
            _server.run(svcBodyInstr(ServiceKind::Ipc), sink);
            _trap.runPath(_cswitchPath, sink);
            _ipc.runPath(_replyPath, sink);
        }
    }
    switch (req.kind) {
      case ServiceKind::FileRead:
        // The server's buffer cache lives in its own mapped space;
        // the kernel moves the payload into the caller's buffer
        // (copied when small, remapped out-of-line when large).
        transfer(_serverSpace, serverBufAddr(_fileOffset),
                 caller.space(), req.userBufferVa, req.bytes, sink);
        _fileOffset += req.bytes;
        break;
      case ServiceKind::FileWrite:
        transfer(caller.space(), req.userBufferVa, _serverSpace,
                 serverBufAddr(_fileOffset), req.bytes, sink);
        _fileOffset += req.bytes;
        break;
      case ServiceKind::Ipc:
        transfer(caller.space(), req.userBufferVa, _serverSpace,
                 layout::userWsBase + 0x8000, req.bytes, sink);
        break;
      case ServiceKind::Stat:
        break;
    }

    // Decomposed services consult their sibling servers (naming,
    // authentication) with nested RPCs — each another address-space
    // crossing.
    if (!_extraServers.empty() && _rng.chance(_p.extraServerProb)) {
        const std::size_t pick = _rng.below(_extraServers.size());
        Component &extra = *_extraServers[pick];
        _ipc.runPath(_sendPath, sink);
        _trap.runPath(_cswitchPath, sink);
        extra.runPath({layout::userTextBase + 0x10000,
                       _p.serverStubInInstr}, sink);
        extra.run(600, sink);
        _trap.runPath(_cswitchPath, sink);
        _ipc.runPath(_replyPath, sink);
    }

    // --- return path (~850 instructions; Figure 2 steps 5-7) ---
    _server.runPath(_stubOutPath, sink);
    _trap.runPath(_cswitchPath, sink);
    _ipc.runPath(_replyPath, sink);
    _emul->runPath(_emulRetPath, sink);
}

void
MachModel::displayFrame(Component &caller, std::uint64_t bytes,
                        TraceSink &sink)
{
    panicIf(!_emul, "MachModel::attachApp must run before services");

    if (_p.xViaBsdServer) {
        // The measured system: X display traffic uses the BSD socket
        // interface, so each frame is a write() RPC into the BSD
        // server (with a copy) and a read() delivery to X (another
        // copy). This is the 30%-of-time-in-the-BSD-server behaviour
        // the paper reports for mpeg_play.
        const std::uint64_t frame_va =
            caller.dataBehavior().streamBase +
            _frameCursor % caller.dataBehavior().streamBytes;
        const std::uint64_t mbuf = layout::serverBufBase +
            _p.serverBufBytes; // socket buffers above the file cache

        // write(): app -> BSD server.
        _trap.runPath(_trapPath, sink);
        _emul->runPath(_emulCallPath, sink);
        _ipc.runPath(_sendPath, sink);
        _trap.runPath(_cswitchPath, sink);
        _server.runPath(_stubInPath, sink);
        _server.run(svcBodyInstr(ServiceKind::Ipc), sink);
        // Socket semantics: the payload is copied into mbufs even
        // when large — the cost that makes the socket display path
        // expensive and the VM-share variant attractive.
        _ipc.copyLoop(caller.space(), frame_va, _serverSpace, mbuf,
                      bytes, sink);
        _server.runPath(_stubOutPath, sink);
        _trap.runPath(_cswitchPath, sink);
        _ipc.runPath(_replyPath, sink);
        _emul->runPath(_emulRetPath, sink);

        // X's pending read() completes: BSD server -> X server.
        _trap.runPath(_cswitchPath, sink);
        _server.run(svcBodyInstr(ServiceKind::Ipc) / 2, sink);
        _ipc.copyLoop(_serverSpace, mbuf, _xSpace, layout::xShareBase,
                      bytes, sink);
        _x.run(_p.xInstrPerKByte * (bytes / 1024 + 1), sink);
        _x.copyLoop(_xSpace, layout::xShareBase, _xSpace,
                    layout::frameBufferBase + _fbCursor, bytes, sink);
        _trap.runPath(_cswitchPath, sink);
    } else {
        // Ablation variant: Mach IPC straight to X with VM-shared
        // frame memory — no payload copies, at the price of extra
        // mapped pages (and TLB entries) in two address spaces.
        _trap.runPath(_trapPath, sink);
        _emul->runPath(_emulCallPath, sink);
        _ipc.runPath(_sendPath, sink);
        _trap.runPath(_cswitchPath, sink);
        _x.runPath(_xStubPath, sink);

        _x.run(_p.xInstrPerKByte * (bytes / 1024 + 1), sink);
        const std::uint64_t share_off = _appStreamBytes == 0
            ? 0
            : _frameCursor % _appStreamBytes;
        _x.copyLoop(_xSpace, layout::xShareBase + share_off, _xSpace,
                    layout::frameBufferBase + _fbCursor, bytes, sink);

        _trap.runPath(_cswitchPath, sink);
        _ipc.runPath(_replyPath, sink);
        _emul->runPath(_emulRetPath, sink);
    }

    _frameCursor += bytes;
    _fbCursor = (_fbCursor + bytes) % _p.frameBufferBytes;
}

void
MachModel::timerTick(TraceSink &sink)
{
    _trap.runPath(_timerPath, sink);
}

void
MachModel::vmActivity(Component &caller, TraceSink &sink)
{
    // The external pager is a user-level task: switching to it and
    // running it is itself mapped activity.
    _trap.runPath(_cswitchPath, sink);
    _pager.run(_p.pagerInstr, sink);
    const DataBehavior &d = caller.dataBehavior();
    for (unsigned i = 0; i < _p.pagerInvalidations; ++i) {
        if (i % 2 == 0) {
            invalidateRandomPage(_rng, d.streamBase, d.streamBytes,
                                 caller.space().asid());
        } else {
            invalidateRandomPage(_rng, layout::serverBufBase,
                                 _p.serverBufBytes,
                                 layout::bsdServerAsid);
        }
    }
    _trap.runPath(_cswitchPath, sink);
}

} // namespace oma
