/**
 * @file
 * Baseline-driver tests across machine variants: the knobs the
 * extension benches turn must move the right CPI component in the
 * right direction on real workload streams.
 */

#include <gtest/gtest.h>

#include "core/experiment.hh"

namespace oma
{
namespace
{

RunConfig
shortRun()
{
    RunConfig rc;
    rc.references = 300000;
    return rc;
}

TEST(MachineVariants, BiggerTlbShrinksTlbCpi)
{
    MachineParams big = MachineParams::decstation3100();
    big.tlb.geom = TlbGeometry(512, 8);
    const BaselineResult base =
        runBaseline(BenchmarkId::Mab, OsKind::Mach, shortRun());
    const BaselineResult with =
        runBaseline(BenchmarkId::Mab, OsKind::Mach, shortRun(), big);
    EXPECT_LT(with.cpi.tlb, base.cpi.tlb);
    EXPECT_LT(with.cpi.cpi, base.cpi.cpi);
}

TEST(MachineVariants, PrefetchShrinksIcacheCpiUnderMach)
{
    MachineParams pf = MachineParams::decstation3100();
    pf.iPrefetchNextLine = true;
    const BaselineResult base =
        runBaseline(BenchmarkId::Mpeg, OsKind::Mach, shortRun());
    const BaselineResult with =
        runBaseline(BenchmarkId::Mpeg, OsKind::Mach, shortRun(), pf);
    EXPECT_LT(with.cpi.icache, 0.8 * base.cpi.icache);
}

TEST(MachineVariants, FlushOnSwitchInflatesMachTlbCpi)
{
    MachineParams flush = MachineParams::decstation3100();
    flush.tlb.flushOnAsidSwitch = true;
    const BaselineResult base =
        runBaseline(BenchmarkId::Ousterhout, OsKind::Mach, shortRun());
    const BaselineResult with = runBaseline(
        BenchmarkId::Ousterhout, OsKind::Mach, shortRun(), flush);
    EXPECT_GT(with.cpi.tlb, 3.0 * base.cpi.tlb);
}

TEST(MachineVariants, LongerLinesCutMachIcacheMissesButCostPenalty)
{
    MachineParams wide = MachineParams::decstation3100();
    wide.icache.geom = CacheGeometry::fromWords(64 * 1024, 8, 1);
    const BaselineResult base =
        runBaseline(BenchmarkId::Mpeg, OsKind::Mach, shortRun());
    const BaselineResult with = runBaseline(
        BenchmarkId::Mpeg, OsKind::Mach, shortRun(), wide);
    // Miss ratio falls strongly (sequential paths)...
    EXPECT_LT(with.icacheMissRatio, 0.5 * base.icacheMissRatio);
    // ...while CPI moves by less than the raw miss factor because
    // each miss now costs 13 cycles instead of 6.
    EXPECT_LT(with.cpi.icache, base.cpi.icache);
}

TEST(MachineVariants, SlowerMemoryScalesCacheStalls)
{
    MachineParams slow = MachineParams::decstation3100();
    slow.missFirstWord = 12;
    const BaselineResult base =
        runBaseline(BenchmarkId::IOzone, OsKind::Ultrix, shortRun());
    const BaselineResult with = runBaseline(
        BenchmarkId::IOzone, OsKind::Ultrix, shortRun(), slow);
    // Double the first-word penalty: D-cache stalls roughly double.
    EXPECT_GT(with.cpi.dcache, 1.7 * base.cpi.dcache);
    EXPECT_LT(with.cpi.dcache, 2.3 * base.cpi.dcache);
}

TEST(MachineVariants, DeeperWriteBufferShrinksWbCpi)
{
    MachineParams deep = MachineParams::decstation3100();
    deep.wbEntries = 16;
    MachineParams shallow = MachineParams::decstation3100();
    shallow.wbEntries = 1;
    const BaselineResult d = runBaseline(BenchmarkId::VideoPlay,
                                         OsKind::Ultrix, shortRun(),
                                         deep);
    const BaselineResult s = runBaseline(BenchmarkId::VideoPlay,
                                         OsKind::Ultrix, shortRun(),
                                         shallow);
    EXPECT_LT(d.cpi.writeBuffer, s.cpi.writeBuffer);
}

} // namespace
} // namespace oma
