/**
 * @file
 * Implementation of the System trace generator.
 */

#include "workload/system.hh"

#include <algorithm>

#include "support/logging.hh"

namespace oma
{

namespace
{

/** Countdown used when an event class is disabled. */
constexpr std::uint64_t never = ~0ULL / 2;

std::uint64_t
draw(Rng &rng, double rate)
{
    return rate <= 0.0 ? never : rng.geometric(rate);
}

} // namespace

CodeRegion
System::appCode(const WorkloadParams &wl)
{
    CodeRegion code;
    code.base = layout::userTextBase;
    code.footprint = wl.codeFootprint;
    code.skew = wl.codeSkew;
    code.meanRun = wl.meanRun;
    code.meanIterations = wl.meanIterations;
    return code;
}

DataBehavior
System::appData(const WorkloadParams &wl)
{
    DataBehavior d;
    d.loadPerInstr = wl.loadPerInstr;
    d.storePerInstr = wl.storePerInstr;
    d.stackBase = layout::userStackBase;
    d.stackBytes = wl.stackBytes;
    d.wsBase = layout::userWsBase;
    d.wsBytes = wl.wsBytes;
    d.wsSkew = wl.wsSkew;
    d.streamFracLoad = wl.streamFracLoad;
    d.streamFracStore = wl.streamFracStore;
    d.storeBurstMean = wl.storeBurstMean;
    d.streamBase = layout::userStreamBase;
    d.streamBytes = wl.streamBytes;
    d.streamStride = wl.streamStride;
    return d;
}

System::System(const WorkloadParams &workload, OsKind os_kind,
               std::uint64_t seed)
    : _workload(workload),
      _os(makeOsModel(os_kind, seed)),
      _appSpace(layout::appAsid, seed),
      _app(workload.name, _appSpace, Mode::User, appCode(workload),
           appData(workload), mix64(seed ^ 0xa9905eadULL)),
      _rng(mix64(seed ^ 0x5157))
{
    _appSpace.addLinearSegment(layout::userTextBase,
                               workload.codeFootprint);
    _appSpace.addLinearSegment(layout::userStackBase,
                               workload.stackBytes);
    _os->attachApp(_appSpace, _app.dataBehavior());
    _toSyscall = draw(_rng, _workload.syscallPerInstr);
    _toFrame = draw(_rng, _workload.framePerInstr);
    _toTimer = draw(_rng, _workload.timerPerInstr);
    _toVm = draw(_rng, _workload.vmPerInstr);
}

ServiceRequest
System::drawRequest()
{
    double total = 0.0;
    for (const auto &entry : _workload.syscalls)
        total += entry.weight;
    fatalIf(total <= 0.0, "workload has an empty syscall mix: " +
            _workload.name);

    double pick = _rng.uniform() * total;
    const SyscallMixEntry *chosen = &_workload.syscalls.back();
    for (const auto &entry : _workload.syscalls) {
        pick -= entry.weight;
        if (pick <= 0.0) {
            chosen = &entry;
            break;
        }
    }

    ServiceRequest req;
    req.kind = chosen->kind;
    if (chosen->meanBytes > 0) {
        // +/- 50% jitter, word aligned.
        req.bytes = (chosen->meanBytes / 2 +
                     _rng.below(chosen->meanBytes + 1)) & ~3ULL;
    }
    const DataBehavior &d = _app.dataBehavior();
    req.userBufferVa = d.streamBase + (_bufCursor % d.streamBytes);
    _bufCursor += req.bytes;
    return req;
}

void
System::step()
{
    const std::uint64_t max_burst = 4000;
    std::uint64_t burst = std::min(
        {_toSyscall, _toFrame, _toTimer, _toVm, max_burst});
    if (burst > 0)
        _app.run(burst, _buffer);

    _toSyscall -= burst;
    _toFrame -= burst;
    _toTimer -= burst;
    _toVm -= burst;

    if (_toSyscall == 0) {
        _os->invokeService(_app, drawRequest(), _buffer);
        if (_syscallBurstLeft > 0) {
            --_syscallBurstLeft;
            _toSyscall = draw(_rng, 1.0 / _workload.syscallBurstGap);
        } else {
            const double burst =
                std::max(1.0, _workload.syscallBurstMean);
            _syscallBurstLeft = burst <= 1.0
                ? 0
                : _rng.geometric(1.0 / burst) - 1;
            // Pick the long gap so the mean rate stays at
            // syscallPerInstr across the whole burst cycle.
            const double cycle = burst / _workload.syscallPerInstr;
            const double long_gap = std::max(
                1.0, cycle - double(_syscallBurstLeft) *
                         _workload.syscallBurstGap);
            _toSyscall = draw(_rng, 1.0 / long_gap);
        }
    }
    if (_toFrame == 0) {
        _os->displayFrame(_app, _workload.frameBytes, _buffer);
        _toFrame = draw(_rng, _workload.framePerInstr);
    }
    if (_toTimer == 0) {
        _os->timerTick(_buffer);
        _toTimer = draw(_rng, _workload.timerPerInstr);
    }
    if (_toVm == 0) {
        _os->vmActivity(_app, _buffer);
        _toVm = draw(_rng, _workload.vmPerInstr);
    }
}

bool
System::next(MemRef &ref)
{
    while (_pos >= _buffer.refs.size()) {
        _buffer.refs.clear();
        _pos = 0;
        step();
    }
    ref = _buffer.refs[_pos++];
    if (ref.isFetch()) {
        ++_totalInstr;
        if (ref.mode == Mode::User && ref.asid == layout::appAsid &&
            ref.vaddr < layout::emulTextBase) {
            ++_appInstr;
        }
    }
    return true;
}

RecordedTrace
System::record(std::uint64_t max_refs)
{
    RecordedTrace trace;
    setInvalidateHook(
        [&trace](std::uint64_t vpn, std::uint32_t asid, bool global) {
            trace.recordInvalidation(vpn, asid, global);
        });
    MemRef ref;
    std::uint64_t consumed = 0;
    while (consumed < max_refs && next(ref)) {
        trace.append(ref);
        ++consumed;
    }
    setInvalidateHook(nullptr);
    trace.setOtherCpi(otherCpiSoFar());
    return trace;
}

double
System::userInstructionFraction() const
{
    return _totalInstr == 0
        ? 0.0
        : double(_appInstr) / double(_totalInstr);
}

double
System::otherCpiSoFar() const
{
    const double user = userInstructionFraction();
    return _workload.userOtherCpi * user +
        _workload.kernelOtherCpi * (1.0 - user);
}

} // namespace oma
