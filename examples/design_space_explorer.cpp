/**
 * @file
 * Example: interactive version of the paper's cost/benefit search.
 *
 * Sweeps the Table 5 configuration grid for the chosen workloads and
 * OS, then ranks allocations under an arbitrary die budget — e.g.
 * explore what a 125,000-rbe (half-budget) part should look like, or
 * how the optimum changes under Ultrix.
 *
 * Usage: design_space_explorer [budget_rbe] [ultrix|mach]
 *                              [max_cache_ways] [refs_per_workload]
 */

#include <cstdlib>
#include <iostream>
#include <string>

#include "api/query_engine.hh"
#include "core/search.hh"
#include "support/logging.hh"
#include "support/table.hh"

using namespace oma;

int
main(int argc, char **argv)
{
    // The whole exploration is one api::AllocationRequest: the
    // budget/OS/associativity flags below just fill its fields, and
    // the QueryEngine answers it the same way the daemon would.
    api::AllocationRequest request;
    request.references = 600000;
    request.topK = 0;

    if (argc > 1)
        request.budgetRbe = std::strtod(argv[1], nullptr);
    if (argc > 2) {
        const std::string name = argv[2];
        if (name == "ultrix")
            request.os = OsKind::Ultrix;
        else if (name == "mach")
            request.os = OsKind::Mach;
        else
            fatal("unknown OS: " + name + " (ultrix|mach)");
    }
    if (argc > 3)
        request.maxCacheWays = std::strtoull(argv[3], nullptr, 10);
    if (argc > 4)
        request.references = std::strtoull(argv[4], nullptr, 10);
    const double budget = request.budgetRbe;

    std::cout << "Design-space exploration: budget "
              << fmtGrouped(std::uint64_t(budget)) << " rbe, OS "
              << osKindName(request.os) << ", cache associativity <= "
              << request.maxCacheWays << "\n\n";

    api::QueryEngine engine;
    std::vector<SweepResult> results;
    for (BenchmarkId id : allBenchmarks()) {
        std::cout << "  sweeping " << benchmarkName(id) << "...\n";
        api::AllocationRequest one = request;
        one.workloads = {id};
        results.push_back(engine.sweep(one).front());
    }
    const ComponentCpiTables tables = ComponentCpiTables::average(
        results, MachineParams::decstation3100());

    const api::AllocationResponse response =
        engine.rank(request, tables);
    const auto &ranked = response.allocations;
    if (ranked.empty()) {
        std::cout << "\nNo configuration fits the budget.\n";
        return 0;
    }

    std::cout << "\n" << ranked.size()
              << " in-budget allocations; the best ten:\n";
    TextTable table({"Rank", "TLB", "I-cache", "D-cache",
                     "Cost (rbes)", "CPI (1 + TLB + I + D)"});
    for (std::size_t i = 0; i < 10 && i < ranked.size(); ++i) {
        const Allocation &a = ranked[i];
        table.addRow({std::to_string(a.rank), a.tlb.describe(),
                      a.icache.describe(), a.dcache.describe(),
                      fmtGrouped(std::uint64_t(a.areaRbe)),
                      fmtFixed(a.cpi, 3)});
    }
    table.print(std::cout);

    const Allocation &best = ranked.front();
    std::cout << "\nBest allocation spends "
              << fmtPercent(best.areaRbe / budget)
              << " of the budget (component CPIs: TLB "
              << fmtFixed(best.tlbCpi, 3) << ", I "
              << fmtFixed(best.icacheCpi, 3) << ", D "
              << fmtFixed(best.dcacheCpi, 3) << ").\n";
    return 0;
}
