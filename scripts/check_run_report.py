#!/usr/bin/env python3
"""Validate BENCH_*.json run reports against oma-run-report-v1.

Usage: check_run_report.py [OPTIONS] FILE [FILE...]

Checks, per file (see docs/OBSERVABILITY.md for the schema):
  - parses as JSON with the five fixed top-level keys;
  - schema tag is "oma-run-report-v1";
  - name matches [A-Za-z0-9_-]+ and the file is named BENCH_<name>.json;
  - meta values are strings;
  - counters are non-negative integers;
  - gauges are numbers, or the strings "inf"/"-inf"/"nan";
  - histograms carry integer count/sum/min/max, a numeric (or
    non-finite-string) mean, and power-of-two bucket bounds whose
    occupancy sums to count.

Threshold options (repeatable, applied to every FILE):
  --require-gauge-above NAME=VALUE   gauge NAME must exist, be finite
                                     and be strictly greater than VALUE
  --require-gauge-below NAME=VALUE   gauge NAME must exist, be finite
                                     and be strictly less than VALUE
  --require-counter-above NAME=VALUE counter NAME must exist and be
                                     strictly greater than VALUE
                                     (e.g. serve/dedup_hits=0 proves
                                     deduplication actually happened)
  --require-counter-prefix PREFIX    at least one metric key (counter,
                                     gauge or histogram) must start
                                     with PREFIX
  --require-counter-ratio NUM:DEN<MAX
                                     counters NUM and DEN must both
                                     exist, DEN must be positive, and
                                     NUM/DEN must be strictly below
                                     MAX (the separator is ':' because
                                     metric names contain '/')

Exits non-zero listing every violation; prints one OK line per valid
file so CI logs show what was actually checked.
"""

import json
import os
import re
import sys

SCHEMA = "oma-run-report-v1"
NAME_RE = re.compile(r"^[A-Za-z0-9_-]+$")
TOP_KEYS = ["schema", "name", "meta", "counters", "gauges", "histograms"]
NONFINITE = {"inf", "-inf", "nan"}


def is_gauge_value(v):
    if isinstance(v, bool):
        return False
    if isinstance(v, (int, float)):
        return True
    return isinstance(v, str) and v in NONFINITE


def is_count(v):
    return isinstance(v, int) and not isinstance(v, bool) and v >= 0


def check_histogram(name, h, errors):
    if not isinstance(h, dict):
        errors.append(f"histogram {name}: not an object")
        return
    for key in ("count", "sum", "min", "max"):
        if not is_count(h.get(key)):
            errors.append(
                f"histogram {name}: '{key}' must be a non-negative "
                f"integer, got {h.get(key)!r}")
    if not is_gauge_value(h.get("mean")):
        errors.append(f"histogram {name}: bad mean {h.get('mean')!r}")
    buckets = h.get("buckets")
    if not isinstance(buckets, dict):
        errors.append(f"histogram {name}: 'buckets' must be an object")
        return
    occupancy = 0
    for bound, n in buckets.items():
        if not bound.isdigit() or (
                int(bound) != 0 and int(bound) & (int(bound) - 1)):
            errors.append(
                f"histogram {name}: bucket bound {bound!r} is not a "
                "power of two")
        if not is_count(n) or n == 0:
            errors.append(
                f"histogram {name}: bucket {bound} occupancy {n!r} "
                "must be a positive integer (empty buckets are "
                "omitted)")
        else:
            occupancy += n
    if is_count(h.get("count")) and occupancy != h["count"]:
        errors.append(
            f"histogram {name}: bucket occupancy {occupancy} != "
            f"count {h['count']}")


def parse_threshold(spec, flag):
    """Split a NAME=VALUE threshold spec; exit(2) on a malformed one."""
    name, sep, raw = spec.partition("=")
    try:
        value = float(raw)
    except ValueError:
        value = None
    if not sep or not name or value is None or value != value:
        print(f"{flag}: expected NAME=VALUE with a finite numeric "
              f"VALUE, got {spec!r}", file=sys.stderr)
        sys.exit(2)
    return name, value


def parse_ratio(spec, flag):
    """Split a NUM:DEN<MAX ratio spec; exit(2) on a malformed one."""
    m = re.match(r"^([^:<]+):([^:<]+)<(.+)$", spec)
    try:
        bound = float(m.group(3)) if m else None
    except ValueError:
        bound = None
    if m is None or bound is None or bound != bound:
        print(f"{flag}: expected NUM:DEN<MAX with a finite numeric "
              f"MAX, got {spec!r}", file=sys.stderr)
        sys.exit(2)
    return m.group(1), m.group(2), bound


def check_ratios(doc, ratios):
    """Apply (num, den, max) counter-ratio gates to one report."""
    errors = []
    for num, den, bound in ratios:
        n = doc["counters"].get(num)
        d = doc["counters"].get(den)
        if not is_count(n):
            errors.append(f"counter {num}: required but missing")
            continue
        if not is_count(d) or d == 0:
            errors.append(
                f"counter {den}: required as a positive denominator, "
                f"got {d!r}")
            continue
        if not n / d < bound:
            errors.append(
                f"counter ratio {num}/{den}: {n}/{d} = {n / d:.6g} "
                f"is not < {bound}")
    return errors


def check_thresholds(path, doc, thresholds):
    """Apply (name, bound, above) gauge thresholds to one report."""
    errors = []
    for name, bound, above in thresholds:
        value = doc["gauges"].get(name)
        if value is None:
            errors.append(f"gauge {name}: required but missing")
            continue
        if not isinstance(value, (int, float)) or isinstance(
                value, bool) or value != value:
            errors.append(
                f"gauge {name}: {value!r} is not a finite number")
            continue
        if above and not value > bound:
            errors.append(f"gauge {name}: {value} is not > {bound}")
        elif not above and not value < bound:
            errors.append(f"gauge {name}: {value} is not < {bound}")
    return errors


def check_counter_floors(doc, floors):
    """Apply (name, bound) counter floors to one report."""
    errors = []
    for name, bound in floors:
        value = doc["counters"].get(name)
        if not is_count(value):
            errors.append(f"counter {name}: required but missing")
        elif not value > bound:
            errors.append(f"counter {name}: {value} is not > {bound}")
    return errors


def check_prefixes(doc, prefixes):
    """Require one metric key per prefix across all three metric maps."""
    errors = []
    keys = (list(doc["counters"]) + list(doc["gauges"]) +
            list(doc["histograms"]))
    for prefix in prefixes:
        if not any(key.startswith(prefix) for key in keys):
            errors.append(
                f"no counter, gauge or histogram key starts with "
                f"{prefix!r}")
    return errors


def check_report(path):
    errors = []
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, ValueError) as e:
        return [f"unreadable or invalid JSON: {e}"]

    if not isinstance(doc, dict):
        return ["top level is not an object"]
    if sorted(doc.keys()) != sorted(TOP_KEYS):
        errors.append(
            f"top-level keys {sorted(doc.keys())} != {sorted(TOP_KEYS)}")
        return errors

    if doc["schema"] != SCHEMA:
        errors.append(f"schema {doc['schema']!r} != {SCHEMA!r}")
    name = doc["name"]
    if not (isinstance(name, str) and NAME_RE.match(name)):
        errors.append(f"name {name!r} does not match [A-Za-z0-9_-]+")
    elif os.path.basename(path) != f"BENCH_{name}.json":
        errors.append(
            f"file name {os.path.basename(path)!r} != BENCH_{name}.json")

    for key, value in doc["meta"].items():
        if not isinstance(value, str):
            errors.append(f"meta {key}: value {value!r} is not a string")
    for key, value in doc["counters"].items():
        if not is_count(value):
            errors.append(
                f"counter {key}: {value!r} is not a non-negative integer")
    for key, value in doc["gauges"].items():
        if not is_gauge_value(value):
            errors.append(f"gauge {key}: bad value {value!r}")
    for key, value in doc["histograms"].items():
        check_histogram(key, value, errors)
    return errors


def main(argv):
    paths = []
    thresholds = []
    floors = []
    prefixes = []
    ratios = []
    args = argv[1:]
    while args:
        arg = args.pop(0)
        if arg in ("--require-gauge-above", "--require-gauge-below"):
            if not args:
                print(f"{arg}: missing NAME=VALUE argument",
                      file=sys.stderr)
                return 2
            name, value = parse_threshold(args.pop(0), arg)
            thresholds.append(
                (name, value, arg == "--require-gauge-above"))
        elif arg == "--require-counter-above":
            if not args:
                print(f"{arg}: missing NAME=VALUE argument",
                      file=sys.stderr)
                return 2
            floors.append(parse_threshold(args.pop(0), arg))
        elif arg == "--require-counter-ratio":
            if not args:
                print(f"{arg}: missing NUM:DEN<MAX argument",
                      file=sys.stderr)
                return 2
            ratios.append(parse_ratio(args.pop(0), arg))
        elif arg == "--require-counter-prefix":
            if not args or not args[0] or args[0].startswith("--"):
                print(f"{arg}: missing PREFIX argument",
                      file=sys.stderr)
                return 2
            prefixes.append(args.pop(0))
        elif arg.startswith("--"):
            print(f"unknown option {arg!r}", file=sys.stderr)
            return 2
        else:
            paths.append(arg)
    if not paths:
        print(__doc__.strip().splitlines()[2], file=sys.stderr)
        return 2
    failed = False
    for path in paths:
        errors = check_report(path)
        if not errors:
            with open(path, encoding="utf-8") as f:
                doc = json.load(f)
            errors = (check_thresholds(path, doc, thresholds) +
                      check_counter_floors(doc, floors) +
                      check_prefixes(doc, prefixes) +
                      check_ratios(doc, ratios))
            if not errors:
                gates = []
                if thresholds:
                    gates.append(f"{len(thresholds)} thresholds")
                if floors:
                    gates.append(f"{len(floors)} counter floors")
                if prefixes:
                    gates.append(f"{len(prefixes)} prefixes")
                if ratios:
                    gates.append(f"{len(ratios)} ratios")
                checked = ", " + ", ".join(gates) if gates else ""
                print(f"OK {path}: {len(doc['counters'])} counters, "
                      f"{len(doc['gauges'])} gauges, "
                      f"{len(doc['histograms'])} histograms{checked}")
        if errors:
            failed = True
            for e in errors:
                print(f"{path}: {e}", file=sys.stderr)
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
