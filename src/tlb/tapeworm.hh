/**
 * @file
 * Tapeworm-style multi-configuration TLB simulation.
 *
 * The paper's Tapeworm is a simulator compiled into the OS kernel
 * that sees real TLB miss traps and page tables and simulates
 * alternative TLB configurations on line [Uhlig93]. Our equivalent
 * consumes the reference stream of the modelled machine and maintains
 * one independent Mmu (TLB + page metadata) per configuration, plus a
 * fast fully-associative size sweep built on the Cheetah stack
 * simulator that mirrors Tapeworm's "one pass, many sizes" use.
 */

#ifndef OMA_TLB_TAPEWORM_HH
#define OMA_TLB_TAPEWORM_HH

#include <vector>

#include "cache/cheetah.hh"
#include "tlb/mmu.hh"

namespace oma
{

/**
 * Simulates many TLB configurations against one reference stream.
 *
 * Not thread-safe: each member Mmu owns page metadata and must see
 * references and OS page invalidations in trace order. The parallel
 * sweep engine therefore records the stream (invalidations stamped
 * with the reference they precede) and replays it per-configuration
 * on private Mmu instances, which is bitwise-equivalent to feeding
 * one Tapeworm serially because member Mmus never interact.
 */
class Tapeworm
{
  public:
    Tapeworm(const std::vector<TlbParams> &configs,
             const TlbPenalties &penalties);

    /** Feed one reference to every configuration. */
    void observe(const MemRef &ref);

    /** Broadcast an OS page invalidation to every configuration. */
    void invalidatePage(std::uint64_t vpn, std::uint32_t asid,
                        bool global);

    [[nodiscard]] std::size_t size() const { return _mmus.size(); }
    [[nodiscard]] Mmu &at(std::size_t i) { return _mmus[i]; }
    [[nodiscard]] const Mmu &at(std::size_t i) const { return _mmus[i]; }

  private:
    std::vector<Mmu> _mmus;
};

/**
 * One-pass sweep of every fully-associative LRU TLB size up to
 * @p max_entries. Exploits LRU stack inclusion: a reference that hits
 * at stack depth d hits in every FA LRU TLB with more than d entries,
 * so one stack yields the raw miss count of all sizes at once. Misses
 * are classified by address segment so per-class counts can be
 * reconstructed per size. The nested page-table refill of the full
 * Mmu model is not replayed here (it depends on the simulated size),
 * so this sweep is an accelerator for raw miss curves, validated
 * against Mmu in tests.
 */
class FaTlbSweep
{
  public:
    explicit FaTlbSweep(std::uint64_t max_entries);

    /** Observe one reference (unmapped references are ignored). */
    void observe(const MemRef &ref);

    /** Raw misses a FA LRU TLB of @p entries entries would take. */
    [[nodiscard]] std::uint64_t misses(std::uint64_t entries) const;

    /** Misses of class @p c at @p entries entries. */
    [[nodiscard]] std::uint64_t missesOfClass(std::uint64_t entries,
                                              MissClass c) const;

    /** Translated (mapped) references observed. */
    [[nodiscard]] std::uint64_t translations() const
    {
        return _translations;
    }

  private:
    /**
     * Per-segment stack-distance histograms. Depth index _maxEntries
     * holds "beyond the deepest stack or cold".
     */
    std::uint64_t _maxEntries;
    std::vector<std::uint64_t> _stack; //!< MRU-first (vpn, asid) keys.
    std::vector<std::uint64_t> _userHist;
    std::vector<std::uint64_t> _kernelHist;
    std::uint64_t _coldUser = 0;
    std::uint64_t _coldKernel = 0;
    std::uint64_t _translations = 0;
    /** (vpn, asid) keys ever seen, for cold-miss classification. */
    // oma-lint: allow(ordered-results): membership test via insert()
    // only; never iterated, so traversal order cannot reach results.
    std::unordered_set<std::uint64_t> _touched;
};

} // namespace oma

#endif // OMA_TLB_TAPEWORM_HH
