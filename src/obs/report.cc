/**
 * @file
 * Run-report serialization (JSON/CSV).
 */

#include "obs/report.hh"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <ostream>

#include "support/logging.hh"

namespace oma::obs
{

namespace
{

/** JSON-escape @p s (quotes, backslashes, control characters). */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 2);
    for (const char c : s) {
        switch (c) {
        case '"':
            out += "\\\"";
            break;
        case '\\':
            out += "\\\\";
            break;
        case '\n':
            out += "\\n";
            break;
        case '\t':
            out += "\\t";
            break;
        case '\r':
            out += "\\r";
            break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x",
                              unsigned(static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

/**
 * Shortest-round-trip decimal for @p v. JSON has no literal for
 * non-finite values, so those serialize as strings ("inf"/"nan") —
 * reports must stay parseable whatever a gauge held.
 */
std::string
jsonNumber(double v)
{
    if (!std::isfinite(v))
        return v > 0 ? "\"inf\"" : (v < 0 ? "\"-inf\"" : "\"nan\"");
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    return buf;
}

void
writeHistogram(std::ostream &os, const Histogram &h,
               const char *indent)
{
    os << "{\n"
       << indent << "  \"count\": " << h.count << ",\n"
       << indent << "  \"sum\": " << h.sum << ",\n"
       << indent << "  \"min\": " << (h.count ? h.min : 0) << ",\n"
       << indent << "  \"max\": " << (h.count ? h.max : 0) << ",\n"
       << indent << "  \"mean\": " << jsonNumber(h.mean()) << ",\n"
       << indent << "  \"buckets\": {";
    bool first = true;
    for (unsigned b = 0; b < Histogram::numBuckets; ++b) {
        if (h.buckets[b] == 0)
            continue;
        if (!first)
            os << ", ";
        first = false;
        os << "\"" << Histogram::bucketBound(b)
           << "\": " << h.buckets[b];
    }
    os << "}\n" << indent << "}";
}

} // namespace

RunReport::RunReport(std::string report_name)
    : name(std::move(report_name))
{
    for (const char c : name) {
        const bool ok = (c >= 'a' && c <= 'z') ||
            (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') ||
            c == '_' || c == '-';
        fatalIf(!ok, "run-report name must match [A-Za-z0-9_-]: " +
                    name);
    }
    fatalIf(name.empty(), "run-report name must not be empty");
}

void
RunReport::writeJson(std::ostream &os) const
{
    os << "{\n  \"schema\": \"oma-run-report-v1\",\n  \"name\": \""
       << jsonEscape(name) << "\",\n  \"meta\": {";
    bool first = true;
    for (const auto &[key, value] : meta) {
        os << (first ? "" : ",") << "\n    \"" << jsonEscape(key)
           << "\": \"" << jsonEscape(value) << "\"";
        first = false;
    }
    os << (first ? "" : "\n  ") << "},\n  \"counters\": {";
    first = true;
    for (const auto &[key, value] : metrics.counters()) {
        os << (first ? "" : ",") << "\n    \"" << jsonEscape(key)
           << "\": " << value;
        first = false;
    }
    os << (first ? "" : "\n  ") << "},\n  \"gauges\": {";
    first = true;
    for (const auto &[key, value] : metrics.gauges()) {
        os << (first ? "" : ",") << "\n    \"" << jsonEscape(key)
           << "\": " << jsonNumber(value);
        first = false;
    }
    os << (first ? "" : "\n  ") << "},\n  \"histograms\": {";
    first = true;
    for (const auto &[key, hist] : metrics.histograms()) {
        os << (first ? "" : ",") << "\n    \"" << jsonEscape(key)
           << "\": ";
        writeHistogram(os, hist, "    ");
        first = false;
    }
    os << (first ? "" : "\n  ") << "}\n}\n";
}

void
RunReport::writeCsv(std::ostream &os) const
{
    // CSV values never need quoting: names are [A-Za-z0-9_/-] paths
    // and values are numbers; meta strings are the one exception and
    // are quoted unconditionally.
    os << "kind,name,value\n";
    for (const auto &[key, value] : meta)
        os << "meta," << key << ",\"" << value << "\"\n";
    for (const auto &[key, value] : metrics.counters())
        os << "counter," << key << "," << value << "\n";
    for (const auto &[key, value] : metrics.gauges()) {
        char buf[32];
        std::snprintf(buf, sizeof buf, "%.17g", value);
        os << "gauge," << key << "," << buf << "\n";
    }
    for (const auto &[key, hist] : metrics.histograms()) {
        os << "histogram," << key << "/count," << hist.count << "\n"
           << "histogram," << key << "/sum," << hist.sum << "\n";
    }
}

std::string
RunReport::fileName() const
{
    return "BENCH_" + name + ".json";
}

std::string
RunReport::save(const std::string &dir) const
{
    if (const char *env = std::getenv("OMA_RUN_REPORT")) {
        if (std::string(env) == "0")
            return "";
    }
    std::string out_dir = dir;
    if (out_dir.empty()) {
        const char *env = std::getenv("OMA_RUN_REPORT_DIR");
        out_dir = (env != nullptr && *env != '\0') ? env : ".";
    }
    const std::string path = out_dir + "/" + fileName();
    std::ofstream os(path);
    if (!os) {
        // A read-only working directory must not kill the run the
        // report merely describes.
        warn("cannot write run report: " + path);
        return "";
    }
    writeJson(os);
    os.flush();
    if (!os) {
        warn("short write on run report: " + path);
        return "";
    }
    return path;
}

} // namespace oma::obs
