/**
 * @file
 * A bank of independently configured caches simulated in one pass.
 *
 * The design-space study needs miss ratios for hundreds of cache
 * configurations over the same reference stream; feeding one stream
 * through a CacheBank avoids regenerating or re-reading the trace per
 * configuration.
 */

#ifndef OMA_CACHE_BANK_HH
#define OMA_CACHE_BANK_HH

#include <string>
#include <vector>

#include "cache/cache.hh"
#include "support/logging.hh"

namespace oma
{

/**
 * A set of caches that all observe the same reference stream.
 *
 * Not thread-safe: a bank (and each Cache in it) belongs to one
 * thread. The parallel sweep engine gets its speedup the other way
 * round — one private Cache per lane replaying a recorded stream —
 * which is bitwise-equivalent to a bank because member caches never
 * interact (see ComponentSweep).
 */
class CacheBank
{
  public:
    /** Add a cache; returns its index. */
    std::size_t
    add(const CacheParams &params)
    {
        _caches.emplace_back(params);
        return _caches.size() - 1;
    }

    /** Feed one access to every cache. */
    void
    access(std::uint64_t paddr, RefKind kind)
    {
        for (auto &cache : _caches)
            cache.access(paddr, kind);
    }

    std::size_t size() const { return _caches.size(); }

    /** Member cache @p i (fatal when out of range). */
    Cache &
    at(std::size_t i)
    {
        checkIndex(i);
        return _caches[i];
    }

    const Cache &
    at(std::size_t i) const
    {
        checkIndex(i);
        return _caches[i];
    }

    std::vector<Cache> &caches() { return _caches; }

  private:
    void
    checkIndex(std::size_t i) const
    {
        fatalIf(i >= _caches.size(),
                "CacheBank::at(" + std::to_string(i) + "): only " +
                    std::to_string(_caches.size()) + " caches");
    }

    std::vector<Cache> _caches;
};

} // namespace oma

#endif // OMA_CACHE_BANK_HH
