/**
 * @file
 * Golden canonical-text tests for the component parameter
 * fingerprints. The artifact store keys every replay shard by these
 * texts (src/store), so any accidental change to a field name, field
 * order or value encoding silently orphans every previously stored
 * shard. These tests pin the exact canonical text for the extension
 * components (victim cache, write buffer, hierarchy) the way the
 * store-key tests pin the classic cache/TLB components.
 */

#include <gtest/gtest.h>

#include <string>

#include "api/request.hh"
#include "cache/hierarchy.hh"
#include "cache/victim.hh"
#include "machine/writebuffer.hh"
#include "support/fingerprint.hh"

namespace oma
{
namespace
{

TEST(FingerprintText, VictimParamsCanonicalText)
{
    VictimParams p;
    p.l1 = CacheGeometry(8192, 16, 1);
    p.entries = 4;
    Fingerprint fp;
    p.fingerprint(fp);
    EXPECT_EQ(fp.text(), "cache_geom.capacity_bytes=8192\n"
                         "cache_geom.line_bytes=16\n"
                         "cache_geom.assoc=1\n"
                         "victim.entries=4\n");
}

TEST(FingerprintText, WriteBufferParamsCanonicalText)
{
    WriteBufferParams p;
    p.entries = 4;
    p.drainCycles = 3;
    Fingerprint fp;
    p.fingerprint(fp);
    EXPECT_EQ(fp.text(), "wb.entries=4\n"
                         "wb.drain_cycles=3\n");
}

TEST(FingerprintText, HierarchyParamsCanonicalText)
{
    HierarchyParams p;
    p.l1i.geom = CacheGeometry(8192, 16, 2);
    p.l1d.geom = CacheGeometry(4096, 16, 2);
    p.l2.geom = CacheGeometry(32768, 32, 4);
    p.hasL2 = true;
    Fingerprint fp;
    p.fingerprint(fp);
    EXPECT_EQ(fp.text(), "hier.l1i=0:\n"
                         "cache_geom.capacity_bytes=8192\n"
                         "cache_geom.line_bytes=16\n"
                         "cache_geom.assoc=2\n"
                         "cache.repl=0\n"
                         "cache.write=0\n"
                         "cache.alloc=0\n"
                         "cache.seed=1\n"
                         "hier.l1d=0:\n"
                         "cache_geom.capacity_bytes=4096\n"
                         "cache_geom.line_bytes=16\n"
                         "cache_geom.assoc=2\n"
                         "cache.repl=0\n"
                         "cache.write=0\n"
                         "cache.alloc=0\n"
                         "cache.seed=1\n"
                         "hier.l2=0:\n"
                         "cache_geom.capacity_bytes=32768\n"
                         "cache_geom.line_bytes=32\n"
                         "cache_geom.assoc=4\n"
                         "cache.repl=0\n"
                         "cache.write=0\n"
                         "cache.alloc=0\n"
                         "cache.seed=1\n"
                         "hier.has_l2=1\n"
                         "hier.unified=0\n"
                         "hier.l2_first_word=2\n"
                         "hier.l2_per_word=0\n"
                         "hier.mem_first_word=6\n"
                         "hier.mem_per_word=1\n"
                         "hier.port_conflict=1\n");
}

TEST(FingerprintText, AllocationRequestKeySchemeIsPinned)
{
    // The response-key scheme of the query API (docs/MODEL.md §14):
    // these texts key every served answer in the artifact store, so a
    // renamed field or reordered section silently orphans all stored
    // responses. The workload and space sections are pinned by their
    // own scheme tests; here the API-owned frame around them is.
    api::AllocationRequest request;
    request.workloads = {BenchmarkId::Mpeg};
    const std::string text = request.responseKey().text();

    const std::string header = "api.format_version=1\n"
                               "store.format_version=1\n"
                               "trace.format_version=3\n"
                               "run.os=4:Mach\n"
                               "run.seed=42\n"
                               "run.references=3000000\n"
                               "workloads.n=1\n"
                               "workload.name=9:mpeg_play\n";
    EXPECT_EQ(text.substr(0, header.size()), header);

    const std::string tail = "search.max_cache_ways=8\n"
                             "search.budget_rbe=250000\n"
                             "search.top_k=10\n"
                             "search.strategy=10:exhaustive\n"
                             "artifact=8:response\n";
    ASSERT_GE(text.size(), tail.size());
    EXPECT_EQ(text.substr(text.size() - tail.size()), tail);

    request.strategy = api::Strategy::Annealing;
    const std::string annealed = request.responseKey().text();
    const std::string anneal_tail = "search.strategy=9:annealing\n"
                                    "anneal.seed=42\n"
                                    "anneal.chains=6\n"
                                    "anneal.iterations=2000\n"
                                    "anneal.initial_temp=0.05\n"
                                    "anneal.final_temp=1e-04\n"
                                    "artifact=8:response\n";
    ASSERT_GE(annealed.size(), anneal_tail.size());
    EXPECT_EQ(annealed.substr(annealed.size() - anneal_tail.size()),
              anneal_tail);
}

TEST(FingerprintText, AllocationRequestKeySeparatesContentFromSchedule)
{
    const auto hexOf = [](const api::AllocationRequest &r) {
        return r.responseKey().hex();
    };
    api::AllocationRequest base;
    base.workloads = {BenchmarkId::Mpeg};

    // Execution detail never moves the key...
    api::AllocationRequest threads = base;
    threads.threads = 16;
    EXPECT_EQ(hexOf(base), hexOf(threads));

    // ...while each content knob does: strategy alone,
    api::AllocationRequest annealed = base;
    annealed.strategy = api::Strategy::Annealing;
    EXPECT_NE(hexOf(base), hexOf(annealed));
    // the annealing seed alone under the annealing strategy,
    api::AllocationRequest reseeded = annealed;
    reseeded.annealing.seed = annealed.annealing.seed + 1;
    EXPECT_NE(hexOf(annealed), hexOf(reseeded));
    // and the run seed, references, budget and mix.
    api::AllocationRequest perturbed = base;
    perturbed.seed = 43;
    EXPECT_NE(hexOf(base), hexOf(perturbed));
    perturbed = base;
    perturbed.references = base.references + 1;
    EXPECT_NE(hexOf(base), hexOf(perturbed));
    perturbed = base;
    perturbed.budgetRbe = base.budgetRbe / 2;
    EXPECT_NE(hexOf(base), hexOf(perturbed));
    perturbed = base;
    perturbed.workloads = {BenchmarkId::VideoPlay};
    EXPECT_NE(hexOf(base), hexOf(perturbed));
}

TEST(FingerprintText, EveryFieldReachesTheHash)
{
    // Round-trip sanity: identical params hash identically, and every
    // behaviour-determining field perturbs the hash.
    const auto hexOf = [](const auto &p) {
        Fingerprint fp;
        p.fingerprint(fp);
        return fp.hex();
    };

    VictimParams v;
    v.l1 = CacheGeometry(8192, 16, 1);
    EXPECT_EQ(hexOf(v), hexOf(v));
    VictimParams v2 = v;
    v2.entries = 8;
    EXPECT_NE(hexOf(v), hexOf(v2));

    WriteBufferParams w;
    EXPECT_EQ(hexOf(w), hexOf(w));
    WriteBufferParams w2 = w;
    w2.drainCycles = 5;
    EXPECT_NE(hexOf(w), hexOf(w2));

    HierarchyParams h;
    h.l1i.geom = CacheGeometry(8192, 16, 2);
    h.l1d.geom = h.l1i.geom;
    h.l2.geom = CacheGeometry(32768, 32, 4);
    EXPECT_EQ(hexOf(h), hexOf(h));
    HierarchyParams h2 = h;
    h2.unified = true;
    EXPECT_NE(hexOf(h), hexOf(h2));
    HierarchyParams h3 = h;
    h3.penalties.l2FirstWord = 4;
    EXPECT_NE(hexOf(h), hexOf(h3));
}

} // namespace
} // namespace oma
