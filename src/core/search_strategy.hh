/**
 * @file
 * Search strategies over the five-component allocation space.
 *
 * The exhaustive allocator (AllocationSearch::rank) scores every
 * in-budget combination of TLB, fetch-side organization (plain
 * I-cache or direct-mapped L1 + victim buffer), D-cache, write
 * buffer and hierarchy replacement. That is the gold standard — and
 * on extended grids it is also millions of evaluations per suite.
 * This header factors the scored space itself out of the exhaustive
 * loop (SearchSpace: candidate encoding, exact area/CPI evaluation
 * reusing the precomputed per-geometry tables) and defines a common
 * SearchStrategy interface over it with two implementations:
 *
 *  - ExhaustiveStrategy: the classic enumeration, refactored behind
 *    the interface with *bitwise-unchanged* output (same emission
 *    order, same floating-point accumulation order, same stable
 *    sort), plus monotone cost-bound pruning: the MQF area model is
 *    monotone in entries/ways/capacity, so a per-axis area floor can
 *    reject a whole subgrid before any candidate in it is scored.
 *    Pruning only ever skips candidates that the budget test would
 *    reject individually, so the ranking is identical with it on or
 *    off.
 *
 *  - AnnealingStrategy: seeded simulated annealing with typed
 *    mutation operators (grow/shrink capacity, step ways/line, swap
 *    the component kind, toggle the victim/write-buffer/L2 axes).
 *    Every draw flows through the sanctioned oma::MtRng shim
 *    (support/mt_rng.hh), so the trajectory — and therefore the
 *    returned allocation — is a pure function of the seed,
 *    independent of thread count and repetition.
 *
 * Both strategies report their work volume through the obs layer:
 * `search/candidates` (full grid size), `search/evaluations`
 * (candidates actually costed) and `search/pruned_subspaces`
 * (subgrids rejected by an area floor before scoring).
 */

#ifndef OMA_CORE_SEARCH_STRATEGY_HH
#define OMA_CORE_SEARCH_STRATEGY_HH

#include <cstdint>
#include <string_view>
#include <vector>

#include "core/search.hh"

namespace oma
{

/**
 * One point in the five-component candidate space, encoded as axis
 * indices into a SearchSpace's option lists.
 *
 * A candidate is either a *split* organization (@c hier false:
 * @c primary indexes SearchSpace::iOptions and @c dcache indexes
 * SearchSpace::dOptions) or a *hierarchy* organization (@c hier
 * true: @c primary indexes SearchSpace::hierOptions and @c dcache
 * is ignored, kept zero by convention so candidates compare cleanly).
 */
struct SearchCandidate
{
    bool hier = false;
    std::size_t tlb = 0;     //!< Into the TLB geometry table.
    std::size_t primary = 0; //!< iOptions (split) / hierOptions (hier).
    std::size_t dcache = 0;  //!< dOptions; meaningful only when split.
    std::size_t wb = 0;      //!< Into wbOptions.
};

/**
 * The scored allocation space: every option along each axis with its
 * precomputed area and CPI contribution, the budget, and exact
 * evaluation of any candidate.
 *
 * The per-option areas are computed once per distinct geometry at
 * construction (exactly as the exhaustive loop always did), and
 * area()/cpi() replicate the exhaustive accumulation order
 * operation for operation, so a candidate scores bitwise-identically
 * no matter which strategy evaluates it.
 *
 * Construction also enforces the component-model invariants on
 * externally supplied tables: victim-cache options must wrap a
 * direct-mapped L1 (the associativity restriction is bypassed for
 * them on purpose, so a set-associative victim L1 would silently
 * leak through `max_cache_ways`), and hierarchy options must pass
 * HierarchyParams::validate() (a unified L1 cannot also declare an
 * L2; before validate() existed the L2 of such a contradictory
 * option was priced at zero area).
 *
 * Holds references to @p tables; the tables must outlive the space.
 */
class SearchSpace
{
  public:
    /** Fetch-side option: a plain I-cache (index into icacheGeoms)
     * or a victim option (index into victimOptions). */
    struct IOption
    {
        std::size_t index;
        bool isVictim;
        double area;
        double cpi;
    };

    /** Data-side option: an eligible D-cache geometry. */
    struct DOption
    {
        std::size_t index; //!< Into dcacheGeoms.
        double area;
        double cpi;
    };

    /** Write-buffer option; a single free no-op when depths were not
     * swept, so the classic search shape is a degenerate case. */
    struct WbOption
    {
        std::uint64_t entries;
        double area;
        double cpi;
    };

    /** Hierarchy option replacing the split I/D pair wholesale. */
    struct HierOption
    {
        std::size_t index; //!< Into hierarchyOptions.
        double area;
        double cpi;
    };

    SearchSpace(const ComponentCpiTables &tables, const AreaModel &area,
                double budget_rbe, std::uint64_t max_cache_ways = 8);

    [[nodiscard]] const ComponentCpiTables &tables() const
    {
        return *_tables;
    }
    [[nodiscard]] double budget() const { return _budget; }
    [[nodiscard]] std::uint64_t maxCacheWays() const { return _maxWays; }

    [[nodiscard]] const std::vector<double> &tlbAreas() const
    {
        return _tlbAreas;
    }
    [[nodiscard]] const std::vector<IOption> &iOptions() const
    {
        return _iOptions;
    }
    [[nodiscard]] const std::vector<DOption> &dOptions() const
    {
        return _dOptions;
    }
    [[nodiscard]] const std::vector<WbOption> &wbOptions() const
    {
        return _wbOptions;
    }
    [[nodiscard]] const std::vector<HierOption> &hierOptions() const
    {
        return _hierOptions;
    }

    /** Size of the full candidate grid (feasible or not): one
     * candidate per (TLB, fetch-side x data-side | hierarchy, write
     * buffer) combination. */
    [[nodiscard]] std::uint64_t candidateCount() const;

    // ----- per-axis area floors (monotone cost-bound pruning) -----
    //
    // Each floor is the exact minimum over its axis's options
    // (+infinity for an empty axis). Pruning combines them in the
    // same left-to-right order a concrete candidate's area uses, so
    // the combined floor is itself the area of a concrete candidate
    // and floating-point monotonicity guarantees floor <= area(c)
    // for every candidate c containing the respective option —
    // pruning can never discard an in-budget candidate.

    [[nodiscard]] double minTlbArea() const { return _minTlb; }
    [[nodiscard]] double minIArea() const { return _minI; }
    [[nodiscard]] double minDArea() const { return _minD; }
    [[nodiscard]] double minWbArea() const { return _minWb; }
    [[nodiscard]] double minHierArea() const { return _minHier; }

    /** Exact area of @p c, replicating the exhaustive accumulation
     * order (tlb + fetch-side [+ dcache] + write buffer). */
    [[nodiscard]] double area(const SearchCandidate &c) const;

    /** Exact total CPI of @p c (baseCpi + per-axis contributions in
     * the exhaustive order). */
    [[nodiscard]] double cpi(const SearchCandidate &c) const;

    /** True when area(c) fits the budget. */
    [[nodiscard]] bool
    inBudget(const SearchCandidate &c) const
    {
        return area(c) <= _budget;
    }

    /** Full Allocation record of @p c — field for field what the
     * exhaustive enumeration emits (rank left zero). */
    [[nodiscard]] Allocation materialize(const SearchCandidate &c) const;

  private:
    const ComponentCpiTables *_tables;
    double _budget;
    std::uint64_t _maxWays;

    std::vector<double> _tlbAreas;
    std::vector<IOption> _iOptions;
    std::vector<DOption> _dOptions;
    std::vector<WbOption> _wbOptions;
    std::vector<HierOption> _hierOptions;

    double _minTlb;
    double _minI;
    double _minD;
    double _minWb;
    double _minHier;
};

/** Outcome of one strategy run over a SearchSpace. */
struct SearchResult
{
    /** Best-first allocations with 1-based ranks. Exhaustive: every
     * in-budget candidate. Annealing: the single best candidate
     * found (empty when no feasible candidate exists). */
    std::vector<Allocation> allocations;
    /** Full grid size (SearchSpace::candidateCount()). */
    std::uint64_t candidates = 0;
    /** Candidates whose full area was actually computed. */
    std::uint64_t evaluations = 0;
    /** Subgrids rejected by an area floor before scoring. */
    std::uint64_t prunedSubspaces = 0;
};

/**
 * A search strategy over the scored five-component space.
 *
 * Contract shared by every implementation: the returned allocations
 * are a pure function of (space, strategy configuration) — thread
 * count, repetition and attached observation never change them —
 * and search() reports its work volume through the result's
 * counters (mirrored into the observation as `search/candidates`,
 * `search/evaluations` and `search/pruned_subspaces`).
 */
class SearchStrategy
{
  public:
    virtual ~SearchStrategy() = default;

    /** Stable identifier ("exhaustive", "annealing"). */
    [[nodiscard]] virtual std::string_view name() const = 0;

    /**
     * Run the strategy.
     *
     * @param threads Execution lanes; 0 = one per hardware thread,
     *        1 = serial. Never affects the returned allocations.
     * @param observation Optional metrics/progress sink; attaching
     *        one never changes the result.
     */
    [[nodiscard]] virtual SearchResult
    search(const SearchSpace &space, unsigned threads = 0,
           obs::Observation *observation = nullptr) const = 0;
};

/**
 * The classic exhaustive enumeration behind the strategy interface.
 *
 * Emits split allocations in (TLB, fetch-side, D-cache, write
 * buffer) order then hierarchy allocations in (TLB, hierarchy,
 * write buffer) order, sharded by TLB geometry and stitched back in
 * TLB order, then stable-sorts by CPI — bitwise identical to the
 * historical AllocationSearch::rank for every thread count, with
 * pruning on or off (pruned subgrids contain only over-budget
 * candidates).
 */
class ExhaustiveStrategy final : public SearchStrategy
{
  public:
    explicit ExhaustiveStrategy(bool prune = true) : _prune(prune) {}

    [[nodiscard]] std::string_view
    name() const override
    {
        return "exhaustive";
    }

    [[nodiscard]] bool pruning() const { return _prune; }

    [[nodiscard]] SearchResult
    search(const SearchSpace &space, unsigned threads = 0,
           obs::Observation *observation = nullptr) const override;

  private:
    bool _prune;
};

/** Tuning knobs of the annealing strategy. All defaults are part of
 * the reproducibility contract: a default-constructed config with a
 * given seed always walks the same trajectory. */
struct AnnealingConfig
{
    /** Root seed; per-chain streams are derived with mix64 so chains
     * are independent yet jointly a pure function of this value. */
    std::uint64_t seed = 42;
    /** Independent restart chains (run in parallel, merged in chain
     * order, so the winner is thread-count invariant). */
    unsigned chains = 6;
    /** Mutation proposals per chain. */
    std::uint64_t iterations = 2000;
    /** Geometric cooling schedule endpoints, in CPI units. */
    double initialTemp = 0.05;
    double finalTemp = 1e-4;
};

/**
 * Seeded simulated annealing over the candidate space.
 *
 * Each chain starts from a random feasible candidate and proposes
 * typed mutations (capacity grow/shrink, line/ways steps, TLB
 * steps, write-buffer steps, victim toggle, organization swap, axis
 * jump), accepting by the Metropolis criterion under geometric
 * cooling. Options whose per-axis area floor already exceeds the
 * budget are pruned from the proposal distribution up front
 * (counted in `search/pruned_subspaces`). The merged best candidate
 * is polished with a deterministic coordinate-descent pass before
 * being materialized.
 *
 * Returns at most one allocation (rank 1). Deterministic per seed;
 * thread-count invariant.
 */
class AnnealingStrategy final : public SearchStrategy
{
  public:
    explicit AnnealingStrategy(const AnnealingConfig &config = {})
        : _config(config)
    {
    }

    [[nodiscard]] std::string_view
    name() const override
    {
        return "annealing";
    }

    [[nodiscard]] const AnnealingConfig &config() const
    {
        return _config;
    }

    [[nodiscard]] SearchResult
    search(const SearchSpace &space, unsigned threads = 0,
           obs::Observation *observation = nullptr) const override;

  private:
    AnnealingConfig _config;
};

} // namespace oma

#endif // OMA_CORE_SEARCH_STRATEGY_HH
