/**
 * @file
 * QueryEngine serving-discipline tests.
 *
 * The contract under test (docs/MODEL.md §14): every serving path —
 * cold compute, store-warm, in-flight coalesced — returns bitwise
 * identical response bytes, at any thread count, and the serve
 * counters prove which path ran. The cold answer itself must equal
 * what the underlying sweep + strategy engines produce when driven
 * directly, so the facade can never drift from the engines it fronts.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "api/query_engine.hh"
#include "api/request.hh"
#include "area/mqf.hh"
#include "core/search_strategy.hh"
#include "core/sweep.hh"
#include "obs/metrics.hh"

namespace oma::api
{
namespace
{

namespace fs = std::filesystem;

/** Fresh per-test store root under the test temp directory. */
std::string
storeRoot(const std::string &name)
{
    const std::string root = testing::TempDir() + "/oma_qe_" + name +
        "." + std::to_string(::getpid());
    fs::remove_all(root);
    return root;
}

/** A deliberately small request: one workload, few references, a
 * grid of a handful of geometries — seconds, not minutes. */
AllocationRequest
tinyRequest()
{
    AllocationRequest request;
    request.workloads = {BenchmarkId::Mpeg};
    request.references = 20000;
    request.space.tlbEntries = {64};
    request.space.tlbWays = {1};
    request.space.tlbFullAssocMax = 64;
    request.space.cacheKBytes = {2, 4};
    request.space.lineWords = {4};
    request.space.cacheWays = {1, 2};
    request.topK = 5;
    return request;
}

std::uint64_t
counter(const obs::Observation &obs, const char *name)
{
    return obs.metrics.counter(name);
}

TEST(QueryEngine, AnswerMatchesTheEnginesDrivenDirectly)
{
    const AllocationRequest request = tinyRequest();

    // The facade's answer (storeless, so pure compute).
    QueryEngine engine;
    obs::Observation obs;
    const std::string answer = engine.answer(request, &obs);
    EXPECT_EQ(counter(obs, "serve/computed"), 1u);

    // The same question asked of the engines directly, the way the
    // table benches did before the facade existed.
    ComponentSweep sweep(request.space.cacheGeometries(),
                         request.space.cacheGeometries(),
                         request.space.tlbGeometries());
    const RunConfig rc = request.runConfig("");
    std::vector<SweepResult> results;
    for (const BenchmarkId id : request.workloads)
        results.push_back(
            sweep.run(benchmarkParams(id), request.os, rc, nullptr));
    const ComponentCpiTables tables = ComponentCpiTables::average(
        results, MachineParams::decstation3100());
    const SearchSpace space(tables, AreaModel(), request.budgetRbe,
                            request.maxCacheWays);
    SearchResult direct =
        ExhaustiveStrategy().search(space, request.threads, nullptr);

    AllocationResponse expected;
    expected.strategy = request.strategy;
    expected.inBudget = direct.allocations.size();
    expected.candidates = direct.candidates;
    expected.evaluations = direct.evaluations;
    expected.prunedSubspaces = direct.prunedSubspaces;
    expected.baseCpi = tables.baseCpi;
    expected.wbCpi = tables.wbCpi;
    expected.otherCpi = tables.otherCpi;
    expected.allocations = direct.allocations;
    if (expected.allocations.size() > request.topK)
        expected.allocations.resize(std::size_t(request.topK));

    EXPECT_EQ(answer, encodeResponse(expected));
}

TEST(QueryEngine, ThreadCountNeverChangesTheAnswer)
{
    AllocationRequest request = tinyRequest();
    request.threads = 1;
    QueryEngine one;
    const std::string serial = one.answer(request);

    request.threads = 4;
    QueryEngine four;
    EXPECT_EQ(four.answer(request), serial);
}

TEST(QueryEngine, SecondAnswerIsStoreWarmAndBitwiseIdentical)
{
    const std::string dir = storeRoot("warm");
    QueryEngineConfig config;
    config.storeDir = dir;
    const AllocationRequest request = tinyRequest();

    QueryEngine engine(config);
    obs::Observation cold;
    const std::string first = engine.answer(request, &cold);
    EXPECT_EQ(counter(cold, "serve/computed"), 1u);
    EXPECT_EQ(counter(cold, "serve/warm_hits"), 0u);

    obs::Observation warm;
    const std::string second = engine.answer(request, &warm);
    EXPECT_EQ(second, first);
    EXPECT_EQ(counter(warm, "serve/warm_hits"), 1u);
    EXPECT_EQ(counter(warm, "serve/computed"), 0u);
    // Warm serving touches no simulator: no sweep records, replays
    // or even store trace fetches happen on this path.
    EXPECT_EQ(counter(warm, "sweep/records"), 0u);
    EXPECT_EQ(counter(warm, "sweep/replays"), 0u);
    EXPECT_EQ(counter(warm, "store/trace_hits"), 0u);

    // A different engine instance over the same store is also warm:
    // the answer lives in the store, not the process.
    QueryEngine other(config);
    obs::Observation cross;
    EXPECT_EQ(other.answer(request, &cross), first);
    EXPECT_EQ(counter(cross, "serve/warm_hits"), 1u);
    fs::remove_all(dir);
}

TEST(QueryEngine, BatchCoalescesDuplicatesToOneComputation)
{
    const std::string dir = storeRoot("batch");
    QueryEngineConfig config;
    config.storeDir = dir;
    QueryEngine engine(config);

    const std::string line = encodeRequest(tinyRequest());
    const std::vector<std::string> lines{line, line, line, line};
    obs::Observation obs;
    const std::vector<std::string> answers =
        engine.answerBatch(lines, &obs);

    ASSERT_EQ(answers.size(), 4u);
    for (const std::string &answer : answers)
        EXPECT_EQ(answer, answers.front());
    AllocationResponse decoded;
    std::string error;
    EXPECT_TRUE(decodeResponse(answers.front(), decoded, error))
        << error;

    EXPECT_EQ(counter(obs, "serve/batches"), 1u);
    EXPECT_EQ(counter(obs, "serve/requests"), 4u);
    EXPECT_EQ(counter(obs, "serve/computed"), 1u);
    EXPECT_EQ(counter(obs, "serve/dedup_hits"), 3u);
    EXPECT_EQ(counter(obs, "serve/warm_hits"), 0u);
    EXPECT_EQ(counter(obs, "serve/rejected"), 0u);
    fs::remove_all(dir);
}

TEST(QueryEngine, BatchMixesWarmDistinctAndInvalidLines)
{
    const std::string dir = storeRoot("mixed");
    QueryEngineConfig config;
    config.storeDir = dir;
    QueryEngine engine(config);

    const AllocationRequest small = tinyRequest();
    AllocationRequest tighter = small;
    // A genuinely tighter budget: the tiny grid's candidates span
    // roughly 44k-56k rbe, so this excludes some and the answer
    // content itself changes, not just the store key.
    tighter.budgetRbe = 50000.0;
    obs::Observation prime;
    const std::string warm_answer = engine.answer(small, &prime);

    const std::vector<std::string> lines{
        encodeRequest(small),   // warm
        encodeRequest(tighter), // computed
        "not json",             // refused
        encodeRequest(small),   // warm again (store hit, not dedupe)
    };
    obs::Observation obs;
    const std::vector<std::string> answers =
        engine.answerBatch(lines, &obs);
    ASSERT_EQ(answers.size(), 4u);
    EXPECT_EQ(answers[0], warm_answer);
    EXPECT_EQ(answers[3], warm_answer);
    EXPECT_NE(answers[1], warm_answer);
    EXPECT_NE(answers[2].find("oma-error-v1"), std::string::npos);

    // The two identical lines share one key group, so the second is
    // a dedup fan-out and only the group leader consults the store.
    EXPECT_EQ(counter(obs, "serve/requests"), 4u);
    EXPECT_EQ(counter(obs, "serve/warm_hits"), 1u);
    EXPECT_EQ(counter(obs, "serve/dedup_hits"), 1u);
    EXPECT_EQ(counter(obs, "serve/computed"), 1u);
    EXPECT_EQ(counter(obs, "serve/rejected"), 1u);
    fs::remove_all(dir);
}

TEST(QueryEngine, BatchRefusesLinesBeyondMaxBatch)
{
    QueryEngineConfig config;
    config.maxBatch = 2;
    QueryEngine engine(config);

    const std::string line = encodeRequest(tinyRequest());
    obs::Observation obs;
    const std::vector<std::string> answers =
        engine.answerBatch({line, line, line, line}, &obs);
    ASSERT_EQ(answers.size(), 4u);
    // The first two are admitted (one computed, one deduped)...
    EXPECT_EQ(answers[1], answers[0]);
    AllocationResponse decoded;
    std::string error;
    EXPECT_TRUE(decodeResponse(answers[0], decoded, error)) << error;
    // ...the rest are refused with the admission error.
    for (std::size_t i = 2; i < answers.size(); ++i) {
        EXPECT_NE(answers[i].find("oma-error-v1"), std::string::npos);
        EXPECT_NE(answers[i].find("admission"), std::string::npos);
    }
    EXPECT_EQ(counter(obs, "serve/rejected"), 2u);
    EXPECT_EQ(counter(obs, "serve/computed"), 1u);
    EXPECT_EQ(counter(obs, "serve/dedup_hits"), 1u);
}

TEST(QueryEngine, ConcurrentIdenticalAnswersCoalesceAndMatch)
{
    // True races through answer() itself: all threads must carry
    // identical bytes away, and every serving is accounted to
    // exactly one of computed / warm / deduplicated.
    QueryEngine engine; // storeless: no warm path, dedupe only
    const AllocationRequest request = tinyRequest();

    constexpr int kThreads = 4;
    std::vector<std::string> payloads(kThreads);
    std::vector<obs::Observation> shards(kThreads);
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t]() {
            payloads[std::size_t(t)] =
                engine.answer(request, &shards[std::size_t(t)]);
        });
    }
    for (std::thread &thread : threads)
        thread.join();

    for (const std::string &payload : payloads)
        EXPECT_EQ(payload, payloads.front());
    std::uint64_t computed = 0, warm = 0, dedup = 0;
    for (const obs::Observation &shard : shards) {
        computed += counter(shard, "serve/computed");
        warm += counter(shard, "serve/warm_hits");
        dedup += counter(shard, "serve/dedup_hits");
    }
    EXPECT_EQ(computed + warm + dedup, std::uint64_t(kThreads));
    EXPECT_GE(computed, 1u);
    EXPECT_EQ(warm, 0u); // storeless engine has no warm path
}

TEST(QueryEngine, InvalidRequestsEarnErrorAnswers)
{
    QueryEngine engine;
    obs::Observation obs;

    AllocationRequest empty = tinyRequest();
    empty.workloads.clear();
    std::string answer = engine.answer(empty, &obs);
    EXPECT_NE(answer.find("oma-error-v1"), std::string::npos);
    EXPECT_NE(answer.find("workloads"), std::string::npos);

    AllocationRequest broke = tinyRequest();
    broke.budgetRbe = 0.0;
    answer = engine.answer(broke, &obs);
    EXPECT_NE(answer.find("oma-error-v1"), std::string::npos);

    AllocationRequest no_iters = tinyRequest();
    no_iters.strategy = Strategy::Annealing;
    no_iters.annealing.iterations = 0;
    answer = engine.answer(no_iters, &obs);
    EXPECT_NE(answer.find("oma-error-v1"), std::string::npos);

    // The wire path refuses garbage the same way, never crashing.
    answer = engine.answerJson("{\"not\":\"a request\"}", &obs);
    EXPECT_NE(answer.find("oma-error-v1"), std::string::npos);
    answer = engine.answerJson("garbage", &obs);
    EXPECT_NE(answer.find("oma-error-v1"), std::string::npos);

    EXPECT_EQ(counter(obs, "serve/rejected"), 5u);
    EXPECT_EQ(counter(obs, "serve/requests"), 5u);
    EXPECT_EQ(counter(obs, "serve/computed"), 0u);
}

TEST(QueryEngine, ValidateNamesTheOffendingField)
{
    std::string error;
    AllocationRequest request = tinyRequest();
    EXPECT_TRUE(QueryEngine::validate(request, error));

    request.references = 0;
    EXPECT_FALSE(QueryEngine::validate(request, error));
    EXPECT_NE(error.find("references"), std::string::npos);

    request = tinyRequest();
    request.space.tlbEntries.clear();
    request.space.tlbFullAssocMax = 0;
    EXPECT_FALSE(QueryEngine::validate(request, error));
    EXPECT_NE(error.find("TLB"), std::string::npos);

    request = tinyRequest();
    request.maxCacheWays = 0;
    EXPECT_FALSE(QueryEngine::validate(request, error));
    EXPECT_NE(error.find("max_cache_ways"), std::string::npos);
}

} // namespace
} // namespace oma::api
