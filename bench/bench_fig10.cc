/**
 * @file
 * Figure 10: performance of set-associative instruction caches —
 * suite-average miss ratios and CPI contribution at a fixed 4-word
 * line across sizes and associativities, under Ultrix and Mach.
 */

#include <iostream>

#include "bench/common.hh"
#include "core/sweep.hh"
#include "support/table.hh"

using namespace oma;

namespace
{

const std::vector<std::uint64_t> kSizes = {2, 4, 8, 16, 32};
const std::vector<std::uint64_t> kWays = {1, 2, 4, 8};

std::vector<CacheGeometry>
grid()
{
    std::vector<CacheGeometry> geoms;
    for (std::uint64_t kb : kSizes)
        for (std::uint64_t ways : kWays)
            geoms.push_back(
                CacheGeometry::fromWords(kb * 1024, 4, ways));
    return geoms;
}

void
printGrid(const std::string &title, const std::vector<double> &values,
          int digits)
{
    std::cout << title << "\n";
    TextTable table({"Size \\ Assoc", "1-way", "2-way", "4-way",
                     "8-way"});
    std::size_t i = 0;
    for (std::uint64_t kb : kSizes) {
        std::vector<std::string> row = {fmtKBytes(kb * 1024)};
        for (std::size_t w = 0; w < kWays.size(); ++w, ++i)
            row.push_back(fmtFixed(values[i], digits));
        table.addRow(row);
    }
    table.print(std::cout);
    std::cout << "\n";
}

} // namespace

int
main()
{
    omabench::banner("Set-associative I-cache performance at a fixed "
                     "4-word line (suite average)",
                     "Figure 10");

    const auto geoms = grid();
    const std::vector<CacheGeometry> dcache_stub = {
        CacheGeometry::fromWords(8 * 1024, 4, 1)};
    const std::vector<TlbGeometry> tlb_stub = {
        TlbGeometry::fullyAssoc(64)};
    const MachineParams mp = MachineParams::decstation3100();
    ComponentSweep sweep(geoms, dcache_stub, tlb_stub);

    omabench::BenchReport report("fig10");
    RunConfig rc = omabench::benchRun();
    for (OsKind os : {OsKind::Ultrix, OsKind::Mach}) {
        std::vector<double> miss(geoms.size(), 0.0);
        std::vector<double> cpi(geoms.size(), 0.0);
        for (BenchmarkId id : allBenchmarks()) {
            const SweepResult r =
                sweep.run(id, os, rc, report.observation());
            report.addReferences(r.references);
            for (std::size_t i = 0; i < geoms.size(); ++i) {
                miss[i] += r.icacheMissRatio(i);
                cpi[i] += r.icacheCpi(i, mp);
            }
        }
        for (auto &v : miss)
            v /= double(numBenchmarks);
        for (auto &v : cpi)
            v /= double(numBenchmarks);

        printGrid(std::string(osKindName(os)) +
                      ": average I-cache miss ratio",
                  miss, 4);
        printGrid(std::string(osKindName(os)) +
                      ": I-cache contribution to CPI",
                  cpi, 3);
    }

    std::cout
        << "Shape criteria: Ultrix gains mainly on small caches and "
           "mainly from 1-way to 2-way; Mach benefits from "
           "associativity over a broader range of sizes, yet even an "
           "8-way 4-KB cache cannot overcome its long code paths "
           "(miss ratio still > ~0.03 in the paper).\n";
    return 0;
}
