/**
 * @file
 * Implementation of the MQF-style area model.
 */

#include "area/mqf.hh"

#include "support/bits.hh"
#include "support/logging.hh"

namespace oma
{

AreaModel::AreaModel(const AreaParams &params)
    : _params(params)
{
    fatalIf(params.sramCellRbe <= 0 || params.camCellRbe <= 0,
            "area model cell sizes must be positive");
}

double
AreaModel::sramArrayArea(std::uint64_t rows, std::uint64_t cols) const
{
    const double bits = static_cast<double>(rows) *
        static_cast<double>(cols);
    return _params.sramCellRbe * bits +
        _params.rowOverheadRbe * static_cast<double>(rows) +
        _params.colOverheadRbe * static_cast<double>(cols);
}

double
AreaModel::camArrayArea(std::uint64_t entries, unsigned tag_bits) const
{
    const double bits = static_cast<double>(entries) *
        static_cast<double>(tag_bits);
    return _params.camCellRbe * bits +
        _params.camEntryOverheadRbe * static_cast<double>(entries) +
        _params.colOverheadRbe * static_cast<double>(tag_bits);
}

unsigned
AreaModel::cacheTagBits(const CacheGeometry &geom) const
{
    const unsigned offset_bits = floorLog2(geom.lineBytes);
    const unsigned index_bits = floorLog2(geom.numSets());
    const unsigned used = offset_bits + index_bits;
    panicIf(used >= _params.physAddrBits,
            "cache index/offset exceed the physical address width");
    return _params.physAddrBits - used;
}

unsigned
AreaModel::tlbTagBits(const TlbGeometry &geom) const
{
    const unsigned index_bits =
        geom.fullyAssociative() ? 0 : floorLog2(geom.numSets());
    panicIf(index_bits >= _params.virtPageBits,
            "TLB index exceeds the virtual page number width");
    return _params.virtPageBits - index_bits + _params.asidBits;
}

double
AreaModel::cacheArea(const CacheGeometry &geom) const
{
    geom.validate();
    const std::uint64_t sets = geom.numSets();
    const std::uint64_t data_cols = geom.assoc * geom.lineBytes * 8;
    const std::uint64_t tag_cols =
        geom.assoc * (cacheTagBits(geom) + _params.cacheStatusBits);
    return sramArrayArea(sets, data_cols) +
        sramArrayArea(sets, tag_cols) +
        _params.wayOverheadRbe * static_cast<double>(geom.assoc) +
        _params.controlOverheadRbe;
}

double
AreaModel::tlbArea(const TlbGeometry &geom) const
{
    geom.validate();
    const unsigned data_bits = _params.pteBits;
    if (geom.fullyAssociative()) {
        const unsigned tag_bits = tlbTagBits(geom) + _params.tlbStatusBits;
        return camArrayArea(geom.entries, tag_bits) * 1.0 +
            // The tag CAM is per-entry; the matching data array is a
            // plain SRAM read out by the match lines.
            sramArrayArea(geom.entries, data_bits) +
            _params.controlOverheadRbe;
    }
    const std::uint64_t sets = geom.numSets();
    const unsigned entry_bits =
        tlbTagBits(geom) + _params.tlbStatusBits + data_bits;
    const std::uint64_t cols = geom.assoc * entry_bits;
    return sramArrayArea(sets, cols) +
        _params.wayOverheadRbe * static_cast<double>(geom.assoc) +
        _params.controlOverheadRbe;
}

double
AreaModel::victimBufferArea(std::uint64_t entries,
                            std::uint64_t line_bytes) const
{
    if (entries == 0)
        return 0.0;
    fatalIf(line_bytes == 0 || (line_bytes & (line_bytes - 1)) != 0,
            "victim buffer lines must be a power-of-two byte count");
    // Tags hold full line numbers (no index bits: the buffer is
    // fully associative).
    const unsigned tag_bits =
        _params.physAddrBits - floorLog2(line_bytes);
    return camArrayArea(entries, tag_bits) +
        sramArrayArea(entries, line_bytes * 8) +
        _params.controlOverheadRbe;
}

double
AreaModel::writeBufferArea(std::uint64_t entries) const
{
    const unsigned addr_bits = _params.physAddrBits - 2; // word address
    const unsigned data_bits = 32;
    return camArrayArea(entries, addr_bits) +
        sramArrayArea(entries, data_bits) +
        _params.controlOverheadRbe;
}

} // namespace oma
