/**
 * @file
 * The determinism-contract rule set.
 *
 * Each rule is a token-level check over comment/literal-stripped
 * source lines. The rules are deliberately heuristic — this is a
 * contract enforcer, not a compiler front end — but every heuristic
 * errs toward flagging, and a flagged site that is genuinely safe is
 * silenced with a reason-bearing suppression that documents why.
 */

#include "lint/lint.hh"

#include <array>
#include <cctype>
#include <string>

namespace oma::lint
{

namespace
{

bool
identChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/** Position of whole-identifier @p token in @p line, or npos. */
std::size_t
findToken(const std::string &line, const std::string &token,
          std::size_t from = 0)
{
    std::size_t pos = from;
    while ((pos = line.find(token, pos)) != std::string::npos) {
        const bool left_ok = pos == 0 || !identChar(line[pos - 1]);
        const std::size_t end = pos + token.size();
        const bool right_ok =
            end >= line.size() || !identChar(line[end]);
        if (left_ok && right_ok)
            return pos;
        pos = end;
    }
    return std::string::npos;
}

/** True when the next non-space character after @p pos is @p want. */
bool
nextNonSpaceIs(const std::string &line, std::size_t pos, char want)
{
    while (pos < line.size() &&
           std::isspace(static_cast<unsigned char>(line[pos])))
        ++pos;
    return pos < line.size() && line[pos] == want;
}

bool
pathEndsWith(const std::string &path, const std::string &suffix)
{
    return path.size() >= suffix.size() &&
        path.compare(path.size() - suffix.size(), suffix.size(),
                     suffix) == 0;
}

bool
pathContainsDir(const std::string &path, const std::string &dir)
{
    const std::string withSlashes = "/" + dir + "/";
    return path.find(withSlashes) != std::string::npos ||
        path.rfind(dir + "/", 0) == 0;
}

/**
 * no-wallclock: every run must be a pure function of its seed, so
 * wall-clock time and OS entropy are banned outside the sanctioned
 * shims — support/rng.hh (seeded entropy), support/mt_rng.hh (the
 * explicitly seeded mt19937 wrapper the search strategies draw
 * from), support/clock.hh (observability timing) — and bench code
 * (which may time itself). steady_clock is banned with the wall
 * clocks: interval timing is legitimate only through oma::Clock, so
 * that every timing site is auditable as observability-only. The std
 * random engines are banned with random_device: a default-constructed
 * engine hides its seed and the std distribution adaptors are
 * implementation-defined, so seeded streams flow through the shims
 * only.
 */
class RuleNoWallclock : public Rule
{
  public:
    std::string_view name() const override { return "no-wallclock"; }

    std::string_view
    rationale() const override
    {
        return "wall-clock time and OS entropy make runs "
               "irreproducible; randomness flows through "
               "support/rng.hh or support/mt_rng.hh and timing "
               "through support/clock.hh (observability only)";
    }

    void
    check(const SourceFile &file, std::vector<Finding> &out) const override
    {
        if (pathEndsWith(file.path(), "support/rng.hh") ||
            pathEndsWith(file.path(), "support/mt_rng.hh") ||
            pathEndsWith(file.path(), "support/clock.hh") ||
            pathContainsDir(file.path(), "bench"))
            return;
        // Function-like: only a call site (`token(`) counts.
        static const std::array<const char *, 8> calls = {
            "time",   "clock",   "gettimeofday", "clock_gettime",
            "rand",   "srand",   "rand_r",       "drand48",
        };
        // Type-like: any mention is a hazard.
        static const std::array<const char *, 9> types = {
            "system_clock",
            "high_resolution_clock",
            "steady_clock",
            "random_device",
            "mt19937",
            "mt19937_64",
            "default_random_engine",
            "minstd_rand",
            "minstd_rand0",
        };
        for (std::size_t l = 1; l <= file.lineCount(); ++l) {
            const std::string &code = file.codeLine(l);
            for (const char *token : calls) {
                const std::size_t pos = findToken(code, token);
                if (pos != std::string::npos &&
                    nextNonSpaceIs(code, pos + std::string(token).size(),
                                   '(')) {
                    out.push_back(
                        {file.path(), l, std::string(name()),
                         std::string("call to '") + token +
                             "' reads wall-clock time or unseeded "
                             "entropy",
                         "derive the value from the experiment seed "
                         "via oma::Rng (support/rng.hh) or take it as "
                         "a caller-supplied parameter",
                         false});
                    break;
                }
            }
            for (const char *token : types) {
                if (findToken(code, token) != std::string::npos) {
                    out.push_back(
                        {file.path(), l, std::string(name()),
                         std::string("use of '") + token +
                             "' is nondeterministic across runs",
                         "time observability through oma::Clock "
                         "(support/clock.hh) or draw entropy from "
                         "oma::Rng (support/rng.hh) / the seeded "
                         "oma::MtRng (support/mt_rng.hh)",
                         false});
                    break;
                }
            }
        }
    }
};

/**
 * ordered-results: iteration order of std::unordered_map/set depends
 * on hash seeding, bucket counts and insertion history, so anything
 * iterated out of one can silently reorder results between runs or
 * lanes. Declarations in headers must carry a reason-bearing
 * suppression stating why order never escapes (e.g. only size() and
 * membership are used); iteration anywhere is flagged outright — fix
 * with sorted extraction (copy keys to a vector and sort, or use
 * std::map).
 */
class RuleOrderedResults : public Rule
{
  public:
    std::string_view name() const override { return "ordered-results"; }

    std::string_view
    rationale() const override
    {
        return "unordered-container iteration order is not "
               "deterministic; results built from it break the "
               "bitwise serial/parallel equivalence guarantee";
    }

    void
    check(const SourceFile &file, std::vector<Finding> &out) const override
    {
        const std::vector<std::string> names = file.unorderedNames();
        for (std::size_t l = 1; l <= file.lineCount(); ++l) {
            const std::string &code = file.codeLine(l);

            // Declarations in headers need a stated invariant
            // (#include <unordered_map> itself is not a declaration).
            if (file.isHeader() &&
                code.find("#include") == std::string::npos &&
                (findToken(code, "unordered_map") != std::string::npos ||
                 findToken(code, "unordered_set") != std::string::npos) &&
                code.find('<') != std::string::npos) {
                out.push_back(
                    {file.path(), l, std::string(name()),
                     "unordered container declared in a header: state "
                     "the order-insensitivity invariant in a "
                     "suppression or use an ordered container",
                     "add `// oma-lint: allow(ordered-results): "
                     "<why order never escapes>` or switch to "
                     "std::map / sorted vector",
                     true});
            }

            for (const std::string &n : names) {
                // Range-for over an unordered variable.
                std::size_t pos = findToken(code, n);
                bool flagged = false;
                while (pos != std::string::npos && !flagged) {
                    std::size_t before = pos;
                    while (before > 0 &&
                           std::isspace(static_cast<unsigned char>(
                               code[before - 1])))
                        --before;
                    if (before > 0 && code[before - 1] == ':' &&
                        (before < 2 || code[before - 2] != ':') &&
                        findToken(code, "for") != std::string::npos) {
                        flagged = true;
                        break;
                    }
                    pos = findToken(code, n, pos + n.size());
                }
                // Explicit iterator walks. `.end()` alone is not
                // flagged: `find(k) != c.end()` is membership, not
                // traversal, and traversal always needs a begin().
                for (const char *it :
                     {".begin(", ".cbegin(", ".rbegin("}) {
                    if (code.find(n + it) != std::string::npos) {
                        flagged = true;
                        break;
                    }
                }
                if (flagged) {
                    out.push_back(
                        {file.path(), l, std::string(name()),
                         "iteration over unordered container '" + n +
                             "': traversal order is nondeterministic",
                         "extract to a vector and sort before "
                         "iterating, or store in std::map",
                         true});
                    break;
                }
            }
        }
    }
};

/**
 * header-guard: the static half of header self-containment. Every
 * header must carry a classic include guard (or #pragma once); the
 * compile half — each header building standalone — is enforced by the
 * header_tu CMake target over the TU list emitHeaderTus() generates.
 */
class RuleHeaderGuard : public Rule
{
  public:
    std::string_view name() const override { return "header-guard"; }

    std::string_view
    rationale() const override
    {
        return "unguarded headers break the one-TU-per-header "
               "self-containment build (header_tu target)";
    }

    void
    check(const SourceFile &file, std::vector<Finding> &out) const override
    {
        if (!file.isHeader())
            return;
        bool guarded = false;
        for (std::size_t l = 1; l <= file.lineCount(); ++l) {
            const std::string &code = file.codeLine(l);
            if (code.find("#ifndef") != std::string::npos ||
                code.find("#pragma once") != std::string::npos) {
                guarded = true;
                break;
            }
            // Allow leading comments/blanks only before the guard.
            std::string stripped;
            for (char c : code)
                if (!std::isspace(static_cast<unsigned char>(c)))
                    stripped += c;
            if (!stripped.empty())
                break;
        }
        if (!guarded) {
            out.push_back(
                {file.path(), 1, std::string(name()),
                 "header has no include guard before its first "
                 "declaration",
                 "open with `#ifndef OMA_<PATH>_HH` / `#define "
                 "OMA_<PATH>_HH` and close with `#endif`",
                 false});
        }
    }
};

/**
 * include-hygiene: includes must be project-relative from src/ (no
 * parent traversal, no libstdc++ internals), and headers must not
 * inject names into every includer with namespace-scope
 * using-directives (function-local ones affect only their body and
 * are fine).
 */
class RuleIncludeHygiene : public Rule
{
  public:
    std::string_view name() const override { return "include-hygiene"; }

    std::string_view
    rationale() const override
    {
        return "relative-parent includes and using-directives in "
               "headers make TUs depend on include order, defeating "
               "standalone header builds";
    }

    /**
     * Per-line brace depth *excluding* namespace braces: 0 means the
     * line starts at namespace/file scope, where a using-directive
     * leaks into every includer.
     */
    static std::vector<int>
    scopeDepths(const SourceFile &file)
    {
        std::vector<int> depths(file.lineCount() + 1, 0);
        std::vector<bool> nsBrace; //!< Stack: brace opened a namespace?
        int depth = 0;
        std::string prev, prev2; //!< Last two identifiers seen.
        for (std::size_t l = 1; l <= file.lineCount(); ++l) {
            depths[l] = depth;
            const std::string &code = file.codeLine(l);
            std::size_t i = 0;
            while (i < code.size()) {
                const char c = code[i];
                if (identChar(c)) {
                    std::size_t end = i;
                    while (end < code.size() && identChar(code[end]))
                        ++end;
                    prev2 = prev;
                    prev = code.substr(i, end - i);
                    i = end;
                    continue;
                }
                if (c == '{') {
                    const bool ns =
                        prev == "namespace" || prev2 == "namespace";
                    nsBrace.push_back(ns);
                    if (!ns)
                        ++depth;
                    prev.clear();
                    prev2.clear();
                } else if (c == '}') {
                    if (!nsBrace.empty()) {
                        if (!nsBrace.back())
                            --depth;
                        nsBrace.pop_back();
                    }
                    prev.clear();
                    prev2.clear();
                } else if (c == ';') {
                    prev.clear();
                    prev2.clear();
                }
                ++i;
            }
        }
        return depths;
    }

    void
    check(const SourceFile &file, std::vector<Finding> &out) const override
    {
        const std::vector<int> depths =
            file.isHeader() ? scopeDepths(file) : std::vector<int>();
        for (std::size_t l = 1; l <= file.lineCount(); ++l) {
            // Includes live on raw lines; strings are blanked in code
            // lines, so inspect the raw text for the path.
            const std::string &raw = file.rawLine(l);
            const std::string &code = file.codeLine(l);
            const bool isInclude =
                code.find("#include") != std::string::npos ||
                (raw.find("#include") != std::string::npos &&
                 raw.find_first_not_of(" \t") == raw.find('#'));
            if (isInclude) {
                if (raw.find("\"../") != std::string::npos ||
                    raw.find("<../") != std::string::npos ||
                    raw.find("/../") != std::string::npos) {
                    out.push_back(
                        {file.path(), l, std::string(name()),
                         "parent-relative #include: include paths "
                         "must be project-relative from src/",
                         "include \"<subsystem>/<header>.hh\" and add "
                         "src/ to the include path",
                         false});
                }
                if (raw.find("<bits/") != std::string::npos) {
                    out.push_back(
                        {file.path(), l, std::string(name()),
                         "#include of a libstdc++ internal header",
                         "include the standard <...> header that "
                         "documents the symbol instead",
                         false});
                }
            }
            if (file.isHeader() && depths[l] == 0 &&
                findToken(code, "using") != std::string::npos) {
                const std::size_t u = findToken(code, "using");
                const std::size_t n =
                    findToken(code, "namespace", u + 5);
                if (n != std::string::npos) {
                    out.push_back(
                        {file.path(), l, std::string(name()),
                         "namespace-scope using-directive in a header "
                         "leaks into every includer",
                         "qualify names explicitly or move the "
                         "using-directive into a .cc file or function "
                         "body",
                         false});
                }
            }
        }
    }
};

/**
 * cast-audit: reinterpret_cast and const_cast are where the type
 * system stops checking and an invariant takes over; each site must
 * state that invariant in a suppression so reviewers (and this pass)
 * can audit it.
 */
class RuleCastAudit : public Rule
{
  public:
    std::string_view name() const override { return "cast-audit"; }

    std::string_view
    rationale() const override
    {
        return "reinterpret_cast/const_cast sites carry unchecked "
               "invariants; each must document the invariant that "
               "makes it sound";
    }

    void
    check(const SourceFile &file, std::vector<Finding> &out) const override
    {
        for (std::size_t l = 1; l <= file.lineCount(); ++l) {
            const std::string &code = file.codeLine(l);
            for (const char *token :
                 {"reinterpret_cast", "const_cast"}) {
                if (findToken(code, token) != std::string::npos) {
                    out.push_back(
                        {file.path(), l, std::string(name()),
                         std::string("'") + token +
                             "' without a documented invariant",
                         std::string("add `// oma-lint: allow("
                                     "cast-audit): <invariant>` "
                                     "stating why this ") +
                             token + " is sound",
                         true});
                }
            }
        }
    }
};

// ---------------------------------------------------------------- //
// Concurrency-contract rules (docs/STATIC_ANALYSIS.md, "Concurrency
// contract"). Shared scaffolding first: a brace tracker that records
// each line's starting depth and every class/struct body region, so
// the rules can tell a member declaration from an inline body or a
// local.
// ---------------------------------------------------------------- //

/** One class/struct body: lines whose *starting* brace depth equals
 * bodyDepth inside [beginLine, endLine] are member declarations. */
struct ClassRegion
{
    std::string name;
    std::size_t beginLine = 0; //!< Line after the opening brace.
    std::size_t endLine = 0;   //!< Line holding the closing brace.
    int bodyDepth = 0;
};

struct BraceScan
{
    /** lineDepth[l] = brace depth (all braces) where line l starts. */
    std::vector<int> lineDepth;
    std::vector<ClassRegion> classes;
};

BraceScan
scanBraces(const SourceFile &file)
{
    BraceScan scan;
    scan.lineDepth.assign(file.lineCount() + 1, 0);
    int depth = 0;
    std::string prev;          //!< Last identifier seen.
    bool pendingClass = false; //!< class/struct head awaiting '{'.
    std::string pendingName;
    std::vector<std::size_t> open; //!< Indices into scan.classes.
    for (std::size_t l = 1; l <= file.lineCount(); ++l) {
        scan.lineDepth[l] = depth;
        const std::string &code = file.codeLine(l);
        std::size_t i = 0;
        while (i < code.size()) {
            const char c = code[i];
            if (identChar(c)) {
                std::size_t end = i;
                while (end < code.size() && identChar(code[end]))
                    ++end;
                const std::string tok = code.substr(i, end - i);
                if ((tok == "class" || tok == "struct") &&
                    prev != "enum") {
                    pendingClass = true;
                    pendingName.clear();
                } else if (pendingClass) {
                    pendingName = tok; // Last ident before '{' wins.
                }
                prev = tok;
                i = end;
                continue;
            }
            if (c == '{') {
                ++depth;
                if (pendingClass) {
                    ClassRegion region;
                    region.name = pendingName;
                    region.beginLine = l;
                    region.bodyDepth = depth;
                    open.push_back(scan.classes.size());
                    scan.classes.push_back(region);
                    pendingClass = false;
                }
            } else if (c == '}') {
                if (!open.empty() &&
                    scan.classes[open.back()].bodyDepth == depth) {
                    scan.classes[open.back()].endLine = l;
                    open.pop_back();
                }
                --depth;
            } else if (c == ';') {
                pendingClass = false; // Forward declaration.
            }
            ++i;
        }
    }
    // Unterminated regions (truncated buffer) extend to EOF.
    for (const std::size_t idx : open)
        scan.classes[idx].endLine = file.lineCount();
    return scan;
}

/** Substring find of @p token with identifier boundaries on both
 * sides (for qualified tokens like "std::mutex" that findToken's
 * whole-identifier match cannot express). */
std::size_t
findQualified(const std::string &line, const std::string &token)
{
    std::size_t pos = 0;
    while ((pos = line.find(token, pos)) != std::string::npos) {
        const bool left_ok = pos == 0 || !identChar(line[pos - 1]);
        const std::size_t end = pos + token.size();
        const bool right_ok =
            end >= line.size() || !identChar(line[end]);
        if (left_ok && right_ok)
            return pos;
        pos = end;
    }
    return std::string::npos;
}

/** Next non-space character at/after @p pos, or '\0'. */
char
nextNonSpace(const std::string &line, std::size_t pos)
{
    while (pos < line.size() &&
           std::isspace(static_cast<unsigned char>(line[pos])))
        ++pos;
    return pos < line.size() ? line[pos] : '\0';
}

/** Tokens that disqualify a line from being a data declaration. */
bool
hasAnyToken(const std::string &code,
            std::initializer_list<const char *> tokens)
{
    for (const char *t : tokens) {
        if (findToken(code, t) != std::string::npos)
            return true;
    }
    return false;
}

/**
 * Name of the variable declared on @p code, or "" when the line does
 * not look like one. Scans identifiers left to right: one followed by
 * '(' makes the line a function/call (not a data declaration); one
 * followed by ';', '=', '{' or '[' is the declared name. When
 * @p underscore_only is set, only the codebase's `_member` naming
 * pattern counts — the guarded-member rule uses that to stay out of
 * expressions inside inline bodies.
 */
std::string
declaredVariable(const std::string &code, bool underscore_only)
{
    // A net-negative paren balance means this line continues a
    // multi-line signature or call (`    std::uint64_t limit = 0);`)
    // — default arguments there are not variable declarations.
    int balance = 0;
    for (const char c : code)
        balance += c == '(' ? 1 : c == ')' ? -1 : 0;
    if (balance < 0)
        return "";
    std::size_t i = 0;
    while (i < code.size()) {
        if (!identChar(code[i])) {
            ++i;
            continue;
        }
        std::size_t end = i;
        while (end < code.size() && identChar(code[end]))
            ++end;
        const std::string tok = code.substr(i, end - i);
        const char next = nextNonSpace(code, end);
        if (next == '(')
            return ""; // Function declaration, call, or macro.
        if ((next == ';' || next == '=' || next == '{' ||
             next == '[') &&
            !std::isdigit(static_cast<unsigned char>(tok[0])) &&
            (!underscore_only || tok[0] == '_')) {
            return tok;
        }
        i = end;
    }
    return "";
}

/**
 * lock-audit: every lock is an oma::Mutex acquired through an
 * oma::LockGuard (support/sync.hh) — the capability-annotated,
 * rank-checked shim. Raw std synchronization types have no
 * annotations (so clang cannot verify their guarded state) and naked
 * lock()/unlock() calls leak locks on exception paths; both are
 * flagged everywhere outside the shim itself.
 */
class RuleLockAudit : public Rule
{
  public:
    std::string_view name() const override { return "lock-audit"; }

    std::string_view
    rationale() const override
    {
        return "raw std::mutex/std::condition_variable and naked "
               "lock()/unlock() calls bypass the annotated, "
               "rank-checked oma::Mutex shim (support/sync.hh); "
               "RAII guards only";
    }

    void
    check(const SourceFile &file, std::vector<Finding> &out) const override
    {
        // The shim itself wraps the raw primitives, once.
        if (pathEndsWith(file.path(), "support/sync.hh"))
            return;
        static const std::array<const char *, 8> types = {
            "std::mutex",
            "std::recursive_mutex",
            "std::timed_mutex",
            "std::recursive_timed_mutex",
            "std::shared_mutex",
            "std::shared_timed_mutex",
            "std::condition_variable",
            "std::condition_variable_any",
        };
        static const std::array<const char *, 6> calls = {
            ".lock(",     "->lock(",     ".unlock(",
            "->unlock(",  ".try_lock(",  "->try_lock(",
        };
        for (std::size_t l = 1; l <= file.lineCount(); ++l) {
            const std::string &code = file.codeLine(l);
            for (const char *token : types) {
                if (findQualified(code, token) != std::string::npos) {
                    out.push_back(
                        {file.path(), l, std::string(name()),
                         std::string("raw '") + token +
                             "' outside support/sync.hh",
                         "use oma::Mutex / oma::CondVar with "
                         "oma::LockGuard from support/sync.hh",
                         true});
                    break;
                }
            }
            for (const char *token : calls) {
                if (code.find(token) != std::string::npos) {
                    out.push_back(
                        {file.path(), l, std::string(name()),
                         std::string("naked '") + token +
                             ")' call: a lock held outside RAII "
                             "leaks on exception paths",
                         "hold the mutex with `oma::LockGuard "
                         "lock(mutex);` for the guarded scope",
                         true});
                    break;
                }
            }
        }
    }
};

/**
 * guarded-member: a class that owns an oma::Mutex is declaring that
 * it has concurrent state, so every mutable data member must either
 * name the lock that protects it (OMA_GUARDED_BY) or carry a
 * reasoned suppression stating why it needs no lock (immutable after
 * construction, atomic with an ordering argument, ...). The clang
 * build then verifies the annotations; this rule makes sure they
 * exist on every compiler.
 */
class RuleGuardedMember : public Rule
{
  public:
    std::string_view name() const override { return "guarded-member"; }

    std::string_view
    rationale() const override
    {
        return "a mutex-owning class must say, member by member, "
               "what the mutex protects: OMA_GUARDED_BY or a "
               "reasoned suppression on every mutable data member";
    }

    void
    check(const SourceFile &file, std::vector<Finding> &out) const override
    {
        if (pathEndsWith(file.path(), "support/sync.hh"))
            return;
        const BraceScan scan = scanBraces(file);
        for (const ClassRegion &region : scan.classes) {
            bool ownsMutex = false;
            for (std::size_t l = region.beginLine;
                 l <= region.endLine && !ownsMutex; ++l) {
                const std::string &code = file.codeLine(l);
                if (scan.lineDepth[l] != region.bodyDepth)
                    continue;
                // An owned Mutex member (a reference member is
                // borrowed, not owned, and functions returning
                // Mutex& also carry '&').
                if (findToken(code, "Mutex") != std::string::npos &&
                    code.find(';') != std::string::npos &&
                    code.find('&') == std::string::npos &&
                    code.find('(') == std::string::npos)
                    ownsMutex = true;
            }
            if (!ownsMutex)
                continue;
            for (std::size_t l = region.beginLine;
                 l <= region.endLine; ++l) {
                if (scan.lineDepth[l] != region.bodyDepth)
                    continue;
                const std::string &code = file.codeLine(l);
                if (code.find(';') == std::string::npos)
                    continue;
                if (code.find("OMA_GUARDED_BY") != std::string::npos ||
                    code.find("OMA_PT_GUARDED_BY") !=
                        std::string::npos)
                    continue;
                // The sync primitives themselves need no guard, and
                // const/static members are not mutable
                // instance state.
                if (hasAnyToken(code,
                                {"Mutex", "CondVar", "const",
                                 "constexpr", "static", "using",
                                 "friend", "typedef", "return",
                                 "operator", "public", "private",
                                 "protected", "template", "enum",
                                 "class", "struct"}))
                    continue;
                const std::string member =
                    declaredVariable(code, /*underscore_only=*/true);
                if (member.empty())
                    continue;
                out.push_back(
                    {file.path(), l, std::string(name()),
                     "member '" + member + "' of mutex-owning " +
                         (region.name.empty() ? "class"
                                              : "class '" +
                                 region.name + "'") +
                         " has no OMA_GUARDED_BY annotation",
                     "annotate `" + member +
                         " OMA_GUARDED_BY(<mutex>)` or add "
                         "`// oma-lint: allow(guarded-member): "
                         "<why no lock is needed>`",
                     true});
            }
        }
    }
};

/**
 * shared-state: mutable statics and namespace-scope globals are
 * state every thread shares and no caller passed in — the daemon's
 * concurrency hazard and the determinism contract's blind spot
 * (they survive across runs within a process). Constants,
 * thread_local state, and the logging sink are fine; anything else
 * must justify itself in a suppression.
 */
class RuleSharedState : public Rule
{
  public:
    std::string_view name() const override { return "shared-state"; }

    std::string_view
    rationale() const override
    {
        return "mutable static/global state is shared by every "
               "thread and reused across runs in one process; make "
               "it const, thread_local, or caller-owned";
    }

    void
    check(const SourceFile &file, std::vector<Finding> &out) const override
    {
        // Allowlist: the logging sink is the sanctioned process-wide
        // channel, and bench drivers are single-threaded
        // google-benchmark mains whose statics cache setup between
        // registered benchmarks without ever reaching a result
        // (same carve-out as no-wallclock).
        if (pathEndsWith(file.path(), "support/logging.hh") ||
            pathEndsWith(file.path(), "support/logging.cc") ||
            pathContainsDir(file.path(), "bench"))
            return;
        const std::vector<int> depths =
            RuleIncludeHygiene::scopeDepths(file);
        for (std::size_t l = 1; l <= file.lineCount(); ++l) {
            const std::string &code = file.codeLine(l);
            const bool isStatic =
                findToken(code, "static") != std::string::npos;
            // Namespace-scope declarations are shared even without
            // `static` (scopeDepths ignores namespace braces).
            const bool atNamespaceScope = depths[l] == 0;
            if (!isStatic && !atNamespaceScope)
                continue;
            if (code.find(';') == std::string::npos)
                continue;
            if (nextNonSpace(code, 0) == '#')
                continue; // Preprocessor line.
            // Constants and per-thread state are not shared-mutable;
            // declaration-shaped non-variable lines are skipped.
            if (hasAnyToken(code,
                            {"const", "constexpr", "thread_local",
                             "consteval", "constinit", "using",
                             "friend", "typedef", "namespace",
                             "class", "struct", "enum", "union",
                             "template", "operator", "extern",
                             "return"}))
                continue;
            const std::string variable =
                declaredVariable(code, /*underscore_only=*/false);
            if (variable.empty())
                continue;
            out.push_back(
                {file.path(), l, std::string(name()),
                 std::string(isStatic ? "mutable static"
                                      : "namespace-scope mutable") +
                     " state '" + variable +
                     "' is shared by every thread",
                 "make '" + variable +
                     "' const/constexpr or thread_local, or pass it "
                     "explicitly; if it must be process-wide, add "
                     "`// oma-lint: allow(shared-state): <why>`",
                 true});
        }
    }
};

} // namespace

std::vector<std::unique_ptr<Rule>>
makeDefaultRules()
{
    std::vector<std::unique_ptr<Rule>> rules;
    rules.push_back(std::make_unique<RuleNoWallclock>());
    rules.push_back(std::make_unique<RuleOrderedResults>());
    rules.push_back(std::make_unique<RuleHeaderGuard>());
    rules.push_back(std::make_unique<RuleIncludeHygiene>());
    rules.push_back(std::make_unique<RuleCastAudit>());
    rules.push_back(std::make_unique<RuleLockAudit>());
    rules.push_back(std::make_unique<RuleGuardedMember>());
    rules.push_back(std::make_unique<RuleSharedState>());
    return rules;
}

} // namespace oma::lint
