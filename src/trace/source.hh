/**
 * @file
 * Abstract producers and consumers of memory-reference streams.
 */

#ifndef OMA_TRACE_SOURCE_HH
#define OMA_TRACE_SOURCE_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "trace/memref.hh"

namespace oma
{

/**
 * A pull-based producer of memory references. Workload generators and
 * trace-file readers implement this interface; simulators consume it.
 */
class TraceSource
{
  public:
    virtual ~TraceSource() = default;

    /**
     * Produce the next reference.
     *
     * @param ref Filled in on success.
     * @retval true a reference was produced.
     * @retval false the stream is exhausted.
     */
    virtual bool next(MemRef &ref) = 0;
};

/** A push-based consumer of memory references. */
class TraceSink
{
  public:
    virtual ~TraceSink() = default;

    /** Consume one reference. */
    virtual void put(const MemRef &ref) = 0;
};

/** An in-memory trace, convenient for tests and small experiments. */
class VectorTraceSource : public TraceSource
{
  public:
    explicit VectorTraceSource(std::vector<MemRef> refs)
        : _refs(std::move(refs))
    {}

    bool
    next(MemRef &ref) override
    {
        if (_pos >= _refs.size())
            return false;
        ref = _refs[_pos++];
        return true;
    }

    /** Rewind to the start of the trace. */
    void rewind() { _pos = 0; }

  private:
    std::vector<MemRef> _refs;
    std::size_t _pos = 0;
};

/** A sink that appends into a vector. */
class VectorTraceSink : public TraceSink
{
  public:
    void put(const MemRef &ref) override { refs.push_back(ref); }

    std::vector<MemRef> refs;
};

/**
 * Drain @p source into @p fn, at most @p limit references
 * (0 = unlimited).
 *
 * @return the number of references processed.
 */
std::uint64_t drain(TraceSource &source,
                    const std::function<void(const MemRef &)> &fn,
                    std::uint64_t limit = 0);

} // namespace oma

#endif // OMA_TRACE_SOURCE_HH
