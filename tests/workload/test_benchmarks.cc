/**
 * @file
 * Sanity tests over the calibrated benchmark records.
 */

#include <gtest/gtest.h>

#include <set>

#include "workload/workload.hh"

namespace oma
{
namespace
{

TEST(Benchmarks, SixDistinctBenchmarks)
{
    const auto all = allBenchmarks();
    EXPECT_EQ(all.size(), std::size_t(numBenchmarks));
    std::set<std::string> names;
    for (BenchmarkId id : all)
        names.insert(benchmarkName(id));
    EXPECT_EQ(names.size(), std::size_t(numBenchmarks));
}

TEST(Benchmarks, MatchesPaperTable2Names)
{
    const std::set<std::string> expected = {
        "IOzone", "jpeg_play", "mab", "mpeg_play", "ousterhout",
        "video_play"};
    std::set<std::string> actual;
    for (BenchmarkId id : allBenchmarks())
        actual.insert(benchmarkName(id));
    EXPECT_EQ(actual, expected);
}

TEST(Benchmarks, ParametersAreSane)
{
    for (BenchmarkId id : allBenchmarks()) {
        const WorkloadParams &wl = benchmarkParams(id);
        EXPECT_FALSE(wl.description.empty()) << wl.name;
        EXPECT_GE(wl.codeFootprint, 8u * 1024) << wl.name;
        EXPECT_LE(wl.codeFootprint, 512u * 1024) << wl.name;
        EXPECT_GT(wl.loadPerInstr, 0.0) << wl.name;
        EXPECT_LT(wl.loadPerInstr + wl.storePerInstr, 0.6) << wl.name;
        EXPECT_GT(wl.syscallPerInstr, 0.0) << wl.name;
        EXPECT_LT(wl.syscallPerInstr, 0.01) << wl.name;
        EXPECT_FALSE(wl.syscalls.empty()) << wl.name;
        EXPECT_GT(wl.userOtherCpi, 0.0) << wl.name;
        EXPECT_GT(wl.nominalInstructions, 1e8) << wl.name;
        double weight = 0.0;
        for (const auto &entry : wl.syscalls)
            weight += entry.weight;
        EXPECT_NEAR(weight, 1.0, 1e-9) << wl.name;
    }
}

TEST(Benchmarks, DisplayWorkloadsSendFrames)
{
    EXPECT_GT(benchmarkParams(BenchmarkId::Mpeg).framePerInstr, 0.0);
    EXPECT_GT(benchmarkParams(BenchmarkId::VideoPlay).framePerInstr,
              0.0);
    EXPECT_GT(benchmarkParams(BenchmarkId::Jpeg).framePerInstr, 0.0);
    // The pure file/syscall workloads do not.
    EXPECT_EQ(benchmarkParams(BenchmarkId::IOzone).framePerInstr, 0.0);
    EXPECT_EQ(benchmarkParams(BenchmarkId::Ousterhout).framePerInstr,
              0.0);
}

TEST(Benchmarks, OusterhoutIsTheSyscallHeaviest)
{
    const double oust =
        benchmarkParams(BenchmarkId::Ousterhout).syscallPerInstr;
    for (BenchmarkId id : allBenchmarks()) {
        if (id == BenchmarkId::Ousterhout)
            continue;
        EXPECT_GE(oust, benchmarkParams(id).syscallPerInstr)
            << benchmarkName(id);
    }
}

TEST(Benchmarks, ReferencesAreStable)
{
    // benchmarkParams returns a stable reference per id.
    const WorkloadParams &a = benchmarkParams(BenchmarkId::Mab);
    const WorkloadParams &b = benchmarkParams(BenchmarkId::Mab);
    EXPECT_EQ(&a, &b);
}

} // namespace
} // namespace oma
