/**
 * @file
 * The simulated machine: single-issue CPU + split caches + software-
 * managed TLB + write buffer, with Monster-style stall attribution.
 *
 * Each instruction costs one base cycle; every stall source adds
 * cycles that are attributed to a cause exactly the way the paper's
 * logic-analyzer state machines attributed DECstation stalls (Table
 * 3): TLB handler cycles, I-cache miss cycles, D-cache miss cycles,
 * write-buffer-full cycles. Non-memory stalls ("Other": FP and
 * integer interlocks) are a per-workload rate supplied by the
 * workload model, since they are a property of the instruction mix,
 * not of the memory system.
 */

#ifndef OMA_MACHINE_MACHINE_HH
#define OMA_MACHINE_MACHINE_HH

#include "cache/cache.hh"
#include "machine/writebuffer.hh"
#include "tlb/mmu.hh"
#include "trace/source.hh"

namespace oma
{

/** Full configuration of a simulated machine. */
struct MachineParams
{
    CacheParams icache;
    CacheParams dcache;
    TlbParams tlb;
    TlbPenalties tlbPenalties;

    /** Cache miss penalty: first word / each additional word. */
    std::uint64_t missFirstWord = 6;
    std::uint64_t missPerWord = 1;
    /** Penalty of an uncached (kseg1) load. */
    std::uint64_t uncachedLoad = 6;

    std::uint64_t wbEntries = 4;
    std::uint64_t wbDrainCycles = 3;

    /**
     * Tagged next-line instruction prefetch (Section 6 lists
     * prefetching units among candidate structures): on an I-cache
     * miss to line L, line L+1 is also brought in. The prefetch
     * overlaps the demand fill, so it costs no extra stall here;
     * its price is cache pollution and memory traffic.
     */
    bool iPrefetchNextLine = false;

    /**
     * The DECstation 3100 the paper measured: 64-KB off-chip
     * direct-mapped write-through I and D caches with 1-word lines
     * and a 64-entry fully-associative TLB.
     */
    static MachineParams decstation3100();

    /** Miss penalty in cycles for the given cache geometry. */
    std::uint64_t
    missPenalty(const CacheGeometry &geom) const
    {
        return missFirstWord + missPerWord * (geom.lineWords() - 1);
    }

    /** Append every behaviour-determining field to a fingerprint. */
    void
    fingerprint(Fingerprint &fp) const
    {
        fp.str("machine.icache", "");
        icache.fingerprint(fp);
        fp.str("machine.dcache", "");
        dcache.fingerprint(fp);
        fp.str("machine.tlb", "");
        tlb.fingerprint(fp);
        tlbPenalties.fingerprint(fp);
        fp.u64("machine.miss_first_word", missFirstWord);
        fp.u64("machine.miss_per_word", missPerWord);
        fp.u64("machine.uncached_load", uncachedLoad);
        fp.u64("machine.wb_entries", wbEntries);
        fp.u64("machine.wb_drain_cycles", wbDrainCycles);
        fp.flag("machine.i_prefetch_next_line", iPrefetchNextLine);
    }
};

/** Monster-style per-cause stall counters. */
struct StallCounters
{
    std::uint64_t instructions = 0;
    std::uint64_t icacheStall = 0;
    std::uint64_t dcacheStall = 0;
    std::uint64_t wbStall = 0;
    std::uint64_t tlbStall = 0;

    /** Total cycles excluding "Other" interlock stalls. */
    std::uint64_t
    cycles() const
    {
        return instructions + icacheStall + dcacheStall + wbStall +
            tlbStall;
    }
};

/** CPI decomposed the way the paper's tables report it. */
struct CpiBreakdown
{
    double cpi = 0.0;
    double tlb = 0.0;
    double icache = 0.0;
    double dcache = 0.0;
    double writeBuffer = 0.0;
    double other = 0.0;

    double
    stallTotal() const
    {
        return tlb + icache + dcache + writeBuffer + other;
    }
};

/** The simulated machine. */
class Machine
{
  public:
    explicit Machine(const MachineParams &params);

    /** Observe one reference from the trace. */
    void observe(const MemRef &ref);

    /**
     * Pull up to @p max_refs references from @p source (0 = until the
     * source is exhausted).
     *
     * @return number of references consumed.
     */
    std::uint64_t run(TraceSource &source, std::uint64_t max_refs = 0);

    const MachineParams &params() const { return _params; }
    const StallCounters &stalls() const { return _stalls; }
    Cache &icache() { return _icache; }
    Cache &dcache() { return _dcache; }
    Mmu &mmu() { return _mmu; }
    const WriteBuffer &writeBuffer() const { return _wb; }

    /** Machine time in cycles (excluding "Other" stalls). */
    std::uint64_t cycles() const { return _cycles; }

    /**
     * Assemble the paper-style CPI breakdown, folding in the
     * workload-supplied non-memory stall rate @p other_cpi.
     */
    CpiBreakdown breakdown(double other_cpi) const;

  private:
    MachineParams _params;
    Cache _icache;
    Cache _dcache;
    Mmu _mmu;
    WriteBuffer _wb;
    StallCounters _stalls;
    std::uint64_t _cycles = 0;
    std::uint64_t _iPenalty;
    std::uint64_t _dPenalty;
};

} // namespace oma

#endif // OMA_MACHINE_MACHINE_HH
