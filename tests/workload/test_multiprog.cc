/**
 * @file
 * Tests for the multiprogrammed workload source.
 */

#include <gtest/gtest.h>

#include <set>

#include "cache/cache.hh"
#include "workload/multiprog.hh"

namespace oma
{
namespace
{

WorkloadParams
light(const char *name)
{
    WorkloadParams wl;
    wl.name = name;
    wl.codeFootprint = 16 * 1024;
    wl.syscallPerInstr = 1.0 / 5000;
    return wl;
}

TEST(Multiprogram, RemapsAsidsIntoDisjointBlocks)
{
    MultiprogramSource mix(5000);
    mix.add(light("a"), OsKind::Mach, 1);
    mix.add(light("b"), OsKind::Mach, 2);

    std::set<std::uint32_t> user_asids;
    MemRef ref;
    for (int i = 0; i < 200000; ++i) {
        ASSERT_TRUE(mix.next(ref));
        if (ref.asid != 0)
            user_asids.insert(ref.asid);
    }
    // Member 0 keeps its default ASIDs (1..15); member 1's sit in
    // 17..31. No collisions across blocks.
    for (std::uint32_t asid : user_asids) {
        EXPECT_TRUE((asid >= 1 && asid < 16) ||
                    (asid >= 17 && asid < 32))
            << asid;
    }
    bool block0 = false, block1 = false;
    for (std::uint32_t asid : user_asids) {
        block0 |= asid < 16;
        block1 |= asid >= 16;
    }
    EXPECT_TRUE(block0);
    EXPECT_TRUE(block1);
}

TEST(Multiprogram, QuantaAlternateMembers)
{
    MultiprogramSource mix(2000);
    mix.add(light("a"), OsKind::Ultrix, 1);
    mix.add(light("b"), OsKind::Ultrix, 2);
    // Track which member is running by its app ASID (1 vs 17).
    MemRef ref;
    int switches = 0;
    std::uint32_t last_block = 99;
    for (int i = 0; i < 300000; ++i) {
        mix.next(ref);
        if (ref.asid == 0)
            continue;
        const std::uint32_t block = ref.asid / 16;
        if (block != last_block && last_block != 99)
            ++switches;
        last_block = block;
    }
    // ~150k instructions at quantum 2000 => dozens of switches.
    EXPECT_GT(switches, 20);
}

TEST(Multiprogram, MembersUseDistinctFrames)
{
    MultiprogramSource mix(5000);
    mix.add(light("a"), OsKind::Ultrix, 1);
    mix.add(light("b"), OsKind::Ultrix, 2);
    // Same user vaddr (app text base) must map to different frames
    // for the two members (different seeds).
    std::set<std::uint64_t> frames;
    MemRef ref;
    for (int i = 0; i < 200000; ++i) {
        mix.next(ref);
        if (ref.isFetch() && ref.vaddr == layout::userTextBase)
            frames.insert(ref.paddr);
    }
    EXPECT_GE(frames.size(), 2u);
}

TEST(Multiprogram, InterferenceRaisesMissRatio)
{
    // Two time-shared jobs must miss more in a shared cache than one
    // job alone — the interference the paper's traces include.
    auto miss_ratio = [](bool multiprogrammed) {
        CacheParams cp;
        cp.geom = CacheGeometry::fromWords(16 * 1024, 4, 1);
        Cache cache(cp);
        MemRef ref;
        if (multiprogrammed) {
            MultiprogramSource mix(20000);
            mix.add(light("a"), OsKind::Ultrix, 1);
            mix.add(light("b"), OsKind::Ultrix, 2);
            for (int i = 0; i < 600000; ++i) {
                mix.next(ref);
                if (ref.isFetch())
                    cache.access(ref.paddr, ref.kind);
            }
        } else {
            System one(light("a"), OsKind::Ultrix, 1);
            for (int i = 0; i < 600000; ++i) {
                one.next(ref);
                if (ref.isFetch())
                    cache.access(ref.paddr, ref.kind);
            }
        }
        return cache.stats().missRatio();
    };
    EXPECT_GT(miss_ratio(true), miss_ratio(false));
}

TEST(Multiprogram, InvalidateHookRemaps)
{
    MultiprogramSource mix(5000);
    WorkloadParams wl = light("a");
    wl.vmPerInstr = 1.0 / 4000;
    mix.add(wl, OsKind::Mach, 1);
    mix.add(wl, OsKind::Mach, 2);
    std::set<std::uint32_t> blocks;
    mix.setInvalidateHook(
        [&](std::uint64_t, std::uint32_t asid, bool) {
            if (asid != 0)
                blocks.insert(asid / 16);
        });
    MemRef ref;
    for (int i = 0; i < 500000; ++i)
        mix.next(ref);
    EXPECT_GE(blocks.size(), 2u);
}

TEST(MultiprogramDeath, EmptyMixRejected)
{
    MultiprogramSource mix;
    MemRef ref;
    EXPECT_EXIT(mix.next(ref), testing::ExitedWithCode(1),
                "at least one member");
}

TEST(MultiprogramDeath, TooManyMembers)
{
    MultiprogramSource mix;
    for (int i = 0; i < 4; ++i)
        mix.add(light("x"), OsKind::Ultrix, i + 1);
    EXPECT_EXIT(mix.add(light("y"), OsKind::Ultrix, 9),
                testing::ExitedWithCode(1), "ASID blocks");
}

} // namespace
} // namespace oma
