/**
 * @file
 * Tests for component sweeps and the averaged CPI tables.
 */

#include <gtest/gtest.h>

#include "core/sweep.hh"

namespace oma
{
namespace
{

std::vector<CacheGeometry>
sizeLadder()
{
    std::vector<CacheGeometry> geoms;
    for (std::uint64_t kb : {2, 8, 32})
        geoms.push_back(CacheGeometry::fromWords(kb * 1024, 4, 1));
    return geoms;
}

std::vector<TlbGeometry>
tlbLadder()
{
    return {TlbGeometry::fullyAssoc(32), TlbGeometry::fullyAssoc(64),
            TlbGeometry(256, 4)};
}

SweepResult
runSweep(OsKind os, std::uint64_t refs = 300000)
{
    ComponentSweep sweep(sizeLadder(), sizeLadder(), tlbLadder());
    RunConfig rc;
    rc.references = refs;
    return sweep.run(BenchmarkId::Mpeg, os, rc);
}

TEST(ComponentSweep, ShapesMatchConfiguration)
{
    const SweepResult r = runSweep(OsKind::Ultrix);
    EXPECT_EQ(r.icacheCount(), 3u);
    EXPECT_EQ(r.dcacheCount(), 3u);
    EXPECT_EQ(r.tlbCount(), 3u);
    EXPECT_EQ(r.references, 300000u);
    EXPECT_GT(r.instructions, 100000u);
}

TEST(ComponentSweep, MissRatiosFallWithCapacity)
{
    const SweepResult r = runSweep(OsKind::Mach);
    EXPECT_GT(r.icache(0).missRatio(), r.icache(1).missRatio());
    EXPECT_GT(r.icache(1).missRatio(), r.icache(2).missRatio());
    EXPECT_GT(r.dcache(0).missRatio(), r.dcache(2).missRatio());
}

TEST(ComponentSweep, CpiContributionMath)
{
    const SweepResult r = runSweep(OsKind::Ultrix);
    const MachineParams mp = MachineParams::decstation3100();
    // icache CPI = misses x penalty / instructions.
    const double expected = double(r.icache(1).stats.totalMisses()) *
        double(mp.missPenalty(r.icache(1).geom)) /
        double(r.instructions);
    EXPECT_DOUBLE_EQ(r.icache(1).cpi(mp), expected);
    EXPECT_GT(r.tlb(0).cpi(), 0.0);
    EXPECT_GE(r.tlb(0).cpi(), r.tlb(1).cpi()); // larger FA TLB: fewer cycles
}

TEST(ComponentSweep, DcacheStoresFreeOnlyOnOneWordLines)
{
    std::vector<CacheGeometry> narrow = {
        CacheGeometry::fromWords(8 * 1024, 1, 1)};
    std::vector<CacheGeometry> wide = {
        CacheGeometry::fromWords(8 * 1024, 4, 1)};
    ComponentSweep sweep(narrow, wide, tlbLadder());
    RunConfig rc;
    rc.references = 200000;
    const SweepResult r = sweep.run(BenchmarkId::IOzone,
                                    OsKind::Ultrix, rc);
    const MachineParams mp = MachineParams::decstation3100();
    // The 1-word D-config charges only load misses.
    const double d1 = double(r.dcache(0).stats.misses[unsigned(
                          RefKind::Load)]) *
        6.0 / double(r.instructions);
    // (the D-cache bank holds the "wide" list; dcache(0) uses it.)
    const double charged = r.dcache(0).cpi(mp);
    const double all_misses =
        double(r.dcache(0).stats.totalMisses()) * 9.0 /
        double(r.instructions);
    EXPECT_LE(charged, all_misses + 1e-12);
    (void)d1;
}

TEST(ComponentSweep, MachTlbServiceExceedsUltrix)
{
    const SweepResult u = runSweep(OsKind::Ultrix);
    const SweepResult m = runSweep(OsKind::Mach);
    EXPECT_GT(m.tlb(1).cpi(), u.tlb(1).cpi()); // 64-entry FA (the R2000)
}

TEST(ComponentCpiTables, AveragesAcrossWorkloads)
{
    ComponentSweep sweep(sizeLadder(), sizeLadder(), tlbLadder());
    RunConfig rc;
    rc.references = 150000;
    std::vector<SweepResult> results;
    results.push_back(sweep.run(BenchmarkId::Mpeg, OsKind::Mach, rc));
    results.push_back(sweep.run(BenchmarkId::Mab, OsKind::Mach, rc));

    const MachineParams mp = MachineParams::decstation3100();
    const ComponentCpiTables tables =
        ComponentCpiTables::average(results, mp);
    ASSERT_EQ(tables.icacheCpi.size(), 3u);
    for (std::size_t i = 0; i < 3; ++i) {
        const double mean = 0.5 * (results[0].icache(i).cpi(mp) +
                                   results[1].icache(i).cpi(mp));
        EXPECT_NEAR(tables.icacheCpi[i], mean, 1e-12);
    }
    EXPECT_DOUBLE_EQ(tables.baseCpi, 1.0);
    const double wb = 0.5 * (results[0].wbCpi + results[1].wbCpi);
    EXPECT_NEAR(tables.wbCpi, wb, 1e-12);
}

TEST(ComponentCpiTablesDeath, EmptyAverageRejected)
{
    EXPECT_DEATH(ComponentCpiTables::average(
                     {}, MachineParams::decstation3100()),
                 "zero sweep");
}

TEST(SweepResultDeath, OutOfRangeViewIndexIsFatal)
{
    // The views are the only way into per-configuration data, and
    // every indexed accessor is bounds-checked: out-of-range indices
    // exit fatally instead of reading past the vectors (the old
    // surface's UB).
    const SweepResult r = runSweep(OsKind::Ultrix, 50000);
    const MachineParams mp = MachineParams::decstation3100();
    EXPECT_EXIT((void)r.icache(3), testing::ExitedWithCode(1),
                "SweepResult::icache\\(3\\)");
    EXPECT_EXIT((void)r.dcache(100), testing::ExitedWithCode(1),
                "SweepResult::dcache\\(100\\)");
    EXPECT_EXIT((void)r.tlb(3), testing::ExitedWithCode(1),
                "SweepResult::tlb\\(3\\)");
    EXPECT_EXIT((void)r.icache(3).cpi(mp), testing::ExitedWithCode(1),
                "only 3 configurations");
}

} // namespace
} // namespace oma
