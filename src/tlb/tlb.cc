/**
 * @file
 * Implementation of the TLB lookup structure.
 */

#include "tlb/tlb.hh"

#include "support/bits.hh"
#include "support/logging.hh"

namespace oma
{

Tlb::Tlb(const TlbParams &params)
    : _params(params), _rng(params.seed)
{
    _params.geom.validate();
    _sets = _params.geom.numSets();
    _ways = _params.geom.ways();
    _entries.assign(_sets * _ways, Entry());
}

bool
Tlb::matches(const Entry &e, std::uint64_t vpn, std::uint32_t asid) const
{
    return e.valid && e.vpn == vpn && (e.global || e.asid == asid);
}

std::size_t
Tlb::setIndex(std::uint64_t vpn) const
{
    return _sets == 1 ? 0 : (vpn & (_sets - 1));
}

Tlb::Entry *
Tlb::find(std::uint64_t vpn, std::uint32_t asid)
{
    const std::size_t base = setIndex(vpn) * _ways;
    for (std::size_t w = 0; w < _ways; ++w) {
        Entry &e = _entries[base + w];
        if (matches(e, vpn, asid))
            return &e;
    }
    return nullptr;
}

const Tlb::Entry *
Tlb::find(std::uint64_t vpn, std::uint32_t asid) const
{
    // oma-lint: allow(cast-audit): *this is genuinely non-const here
    // (const overload forwarding); the mutable find() does not write.
    return const_cast<Tlb *>(this)->find(vpn, asid);
}

bool
Tlb::lookup(std::uint64_t vpn, std::uint32_t asid)
{
    ++_tick;
    ++_stats.accesses;
    Entry *e = find(vpn, asid);
    if (e) {
        if (_params.repl == ReplacementPolicy::Lru)
            e->stamp = _tick;
        return true;
    }
    ++_stats.misses;
    return false;
}

bool
Tlb::probe(std::uint64_t vpn, std::uint32_t asid) const
{
    return find(vpn, asid) != nullptr;
}

std::size_t
Tlb::victimWay(std::size_t set_base)
{
    for (std::size_t w = 0; w < _ways; ++w) {
        if (!_entries[set_base + w].valid)
            return w;
    }
    switch (_params.repl) {
      case ReplacementPolicy::Random:
        return static_cast<std::size_t>(_rng.below(_ways));
      case ReplacementPolicy::Lru:
      case ReplacementPolicy::Fifo: {
        std::size_t victim = 0;
        std::uint64_t oldest = _entries[set_base].stamp;
        for (std::size_t w = 1; w < _ways; ++w) {
            if (_entries[set_base + w].stamp < oldest) {
                oldest = _entries[set_base + w].stamp;
                victim = w;
            }
        }
        return victim;
      }
    }
    panic("unreachable replacement policy");
}

void
Tlb::insert(std::uint64_t vpn, std::uint32_t asid, bool global, bool dirty)
{
    ++_tick;
    // Refresh in place when already resident (re-walk after a race).
    if (Entry *e = find(vpn, asid)) {
        e->global = global;
        e->dirty = dirty;
        e->stamp = _tick;
        return;
    }
    const std::size_t base = setIndex(vpn) * _ways;
    Entry &e = _entries[base + victimWay(base)];
    e.vpn = vpn;
    e.asid = asid;
    e.global = global;
    e.dirty = dirty;
    e.valid = true;
    e.stamp = _tick;
}

bool
Tlb::setDirty(std::uint64_t vpn, std::uint32_t asid)
{
    Entry *e = find(vpn, asid);
    if (!e)
        return false;
    e->dirty = true;
    return true;
}

bool
Tlb::isDirty(std::uint64_t vpn, std::uint32_t asid) const
{
    const Entry *e = find(vpn, asid);
    return e && e->dirty;
}

void
Tlb::invalidate(std::uint64_t vpn, std::uint32_t asid)
{
    if (Entry *e = find(vpn, asid))
        e->valid = false;
}

void
Tlb::invalidateAll()
{
    for (auto &e : _entries)
        e.valid = false;
}

} // namespace oma
