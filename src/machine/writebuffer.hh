/**
 * @file
 * Write-buffer model.
 *
 * The DECstation 3100 couples its write-through caches to a 4-entry
 * write buffer that retires one word to memory every few cycles; the
 * CPU stalls when a store finds the buffer full. Because the
 * simulators are event-count based rather than cycle accurate, the
 * buffer tracks retire-completion times against the machine's running
 * cycle count and reports the stall a store incurs.
 */

#ifndef OMA_MACHINE_WRITEBUFFER_HH
#define OMA_MACHINE_WRITEBUFFER_HH

#include <cstdint>
#include <deque>

#include "support/fingerprint.hh"
#include "support/logging.hh"
#include "trace/memref.hh"

namespace oma
{

/** Configuration of a write buffer as a swept component. */
struct WriteBufferParams
{
    /** Buffer depth in words (must be at least 1). */
    std::uint64_t entries = 4;
    /** Memory cycles to retire one word (must be at least 1). */
    std::uint64_t drainCycles = 3;

    /** Append every behaviour-determining field to a fingerprint. */
    void
    fingerprint(Fingerprint &fp) const
    {
        fp.u64("wb.entries", entries);
        fp.u64("wb.drain_cycles", drainCycles);
    }
};

/** Counters of a standalone write-buffer simulation. */
struct WriteBufferStats
{
    std::uint64_t instructions = 0;
    std::uint64_t stores = 0;
    std::uint64_t stallCycles = 0; //!< Buffer-full stalls.

    /** Write-buffer stall cycles per instruction. */
    [[nodiscard]] double
    cpiContribution() const
    {
        return instructions == 0
            ? 0.0
            : double(stallCycles) / double(instructions);
    }
};

/** A FIFO write buffer with serialized memory retirement. */
class WriteBuffer
{
  public:
    /**
     * @param entries Buffer depth in words; must be at least 1 (a
     *        zero-entry buffer would pop an empty retire queue in
     *        store()).
     * @param drain_cycles Memory cycles to retire one word; must be
     *        at least 1 (instant retirement is not a write buffer).
     */
    WriteBuffer(std::uint64_t entries, std::uint64_t drain_cycles)
        : _entries(entries), _drain(drain_cycles)
    {
        fatalIf(entries == 0 || drain_cycles == 0,
                "WriteBuffer needs entries >= 1 and drain_cycles >= 1");
    }

    /**
     * Push one word at machine time @p now (cycles).
     *
     * @return stall cycles suffered because the buffer was full.
     */
    std::uint64_t
    store(std::uint64_t now)
    {
        ++_stores;
        // Retire completed words.
        while (!_done.empty() && _done.front() <= now)
            _done.pop_front();

        std::uint64_t stall = 0;
        if (_done.size() >= _entries) {
            stall = _done.front() - now;
            now = _done.front();
            _done.pop_front();
            _stallCycles += stall;
        }
        const std::uint64_t start =
            _done.empty() ? now : std::max(now, _done.back());
        _done.push_back(start + _drain);
        return stall;
    }

    /**
     * A cache-miss read conflicts with the write currently retiring
     * on the memory bus (reads bypass queued writes after an address
     * check, but cannot preempt the write in progress). Advances to
     * @p now and returns the cycles the read must wait for the
     * in-flight write to complete.
     */
    std::uint64_t
    syncWait(std::uint64_t now)
    {
        while (!_done.empty() && _done.front() <= now)
            _done.pop_front();
        if (_done.empty())
            return 0;
        const std::uint64_t wait = _done.front() - now;
        _done.pop_front();
        _stallCycles += wait;
        return wait;
    }

    /** Total stall cycles caused by a full buffer. */
    std::uint64_t stallCycles() const { return _stallCycles; }

    /** Total words pushed. */
    std::uint64_t stores() const { return _stores; }

  private:
    std::uint64_t _entries;
    std::uint64_t _drain;
    std::deque<std::uint64_t> _done; //!< Retire-completion times.
    std::uint64_t _stallCycles = 0;
    std::uint64_t _stores = 0;
};

/**
 * Standalone trace-driven write-buffer simulation: the write buffer
 * as a *swept component* rather than a fixture of one Machine.
 *
 * The model keeps its own cycle count — one base cycle per
 * instruction fetch, plus the buffer-full stalls its own stores
 * suffer — so a depth sweep measures how the store stream alone
 * pressures each candidate depth, independent of cache-miss timing.
 * (The write-through machines the paper measures push every store
 * into the buffer, so the store stream is what a depth decision must
 * absorb; cache-miss interactions are second-order and configuration-
 * coupled, which is exactly what a per-component table must not be.)
 *
 * Every reference kind is observed through one observe() body; the
 * batched chunk replay (core/component.hh) funnels through the same
 * body, so scalar and batched counter streams are bitwise-identical
 * by construction.
 */
class WriteBufferSim
{
  public:
    explicit WriteBufferSim(const WriteBufferParams &params)
        : _wb(params.entries, params.drainCycles), _params(params)
    {
    }

    /** Observe one reference of the stream (any kind). */
    void
    observe(RefKind kind)
    {
        if (kind == RefKind::IFetch) {
            ++_stats.instructions;
            ++_now;
            return;
        }
        if (kind == RefKind::Store) {
            ++_stats.stores;
            const std::uint64_t stall = _wb.store(_now);
            _now += stall;
            _stats.stallCycles += stall;
        }
    }

    [[nodiscard]] const WriteBufferStats &stats() const
    {
        return _stats;
    }

    [[nodiscard]] const WriteBufferParams &params() const
    {
        return _params;
    }

  private:
    WriteBuffer _wb;
    WriteBufferParams _params;
    WriteBufferStats _stats;
    std::uint64_t _now = 0;
};

} // namespace oma

#endif // OMA_MACHINE_WRITEBUFFER_HH
