/**
 * @file
 * Implementation of the thread pool.
 */

#include "support/threadpool.hh"

#include <limits>

namespace oma
{

namespace
{

/** Set while this thread is executing parallelFor body indices, so a
 * nested submission can be detected and run inline. */
thread_local bool t_inParallelFor = false;

} // namespace

unsigned
ThreadPool::resolveThreads(unsigned threads)
{
    if (threads != 0)
        return threads;
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : hw;
}

ThreadPool::ThreadPool(unsigned threads)
{
    const unsigned lanes = resolveThreads(threads);
    _workers.reserve(lanes - 1);
    for (unsigned i = 0; i + 1 < lanes; ++i)
        _workers.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(_mutex);
        _stopping = true;
    }
    _wake.notify_all();
    // Join here, not via ~jthread: members are destroyed in reverse
    // declaration order, so the condition variables would die before
    // the workers vector — while a worker may still be inside its
    // final notify_one().
    for (auto &worker : _workers)
        worker.join();
}

void
ThreadPool::workerLoop()
{
    std::uint64_t seen = 0;
    for (;;) {
        {
            std::unique_lock<std::mutex> lock(_mutex);
            _wake.wait(lock,
                       [&] { return _stopping || _jobGen != seen; });
            if (_stopping)
                return;
            seen = _jobGen;
        }
        claimIndices();
        {
            std::lock_guard<std::mutex> lock(_mutex);
            --_activeWorkers;
        }
        _done.notify_one();
    }
}

void
ThreadPool::claimIndices()
{
    t_inParallelFor = true;
    for (;;) {
        const std::size_t i =
            _next.fetch_add(1, std::memory_order_relaxed);
        if (i >= _end)
            break;
        try {
            (*_body)(i);
        } catch (...) {
            std::lock_guard<std::mutex> lock(_mutex);
            if (i < _errorIndex) {
                _errorIndex = i;
                _error = std::current_exception();
            }
        }
    }
    t_inParallelFor = false;
}

void
ThreadPool::parallelFor(std::size_t begin, std::size_t end,
                        const std::function<void(std::size_t)> &body)
{
    if (begin >= end)
        return;
    // Nested calls run on worker lanes; counting only top-level
    // submissions keeps _stats single-writer (the submitting thread).
    if (!t_inParallelFor) {
        _stats.jobs += 1;
        _stats.indices += end - begin;
    }
    // Serial pool, or a nested call from inside one of our own
    // bodies: run inline on this lane (see class comment).
    if (_workers.empty() || t_inParallelFor) {
        for (std::size_t i = begin; i < end; ++i)
            body(i);
        return;
    }

    {
        std::lock_guard<std::mutex> lock(_mutex);
        _next.store(begin, std::memory_order_relaxed);
        _end = end;
        _body = &body;
        _error = nullptr;
        _errorIndex = std::numeric_limits<std::size_t>::max();
        _activeWorkers = unsigned(_workers.size());
        ++_jobGen;
    }
    _wake.notify_all();

    claimIndices(); // The caller is a lane too.

    std::exception_ptr error;
    {
        std::unique_lock<std::mutex> lock(_mutex);
        _done.wait(lock, [&] { return _activeWorkers == 0; });
        _body = nullptr;
        error = _error;
        _error = nullptr;
    }
    if (error)
        std::rethrow_exception(error);
}

void
parallelFor(unsigned threads, std::size_t begin, std::size_t end,
            const std::function<void(std::size_t)> &body)
{
    const unsigned lanes = ThreadPool::resolveThreads(threads);
    if (lanes <= 1 || end - begin <= 1) {
        for (std::size_t i = begin; i < end; ++i)
            body(i);
        return;
    }
    ThreadPool pool(lanes);
    pool.parallelFor(begin, end, body);
}

} // namespace oma
