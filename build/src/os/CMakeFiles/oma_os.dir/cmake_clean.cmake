file(REMOVE_RECURSE
  "CMakeFiles/oma_os.dir/addrspace.cc.o"
  "CMakeFiles/oma_os.dir/addrspace.cc.o.d"
  "CMakeFiles/oma_os.dir/codewalk.cc.o"
  "CMakeFiles/oma_os.dir/codewalk.cc.o.d"
  "CMakeFiles/oma_os.dir/component.cc.o"
  "CMakeFiles/oma_os.dir/component.cc.o.d"
  "CMakeFiles/oma_os.dir/datagen.cc.o"
  "CMakeFiles/oma_os.dir/datagen.cc.o.d"
  "CMakeFiles/oma_os.dir/mach.cc.o"
  "CMakeFiles/oma_os.dir/mach.cc.o.d"
  "CMakeFiles/oma_os.dir/osmodel.cc.o"
  "CMakeFiles/oma_os.dir/osmodel.cc.o.d"
  "CMakeFiles/oma_os.dir/ultrix.cc.o"
  "CMakeFiles/oma_os.dir/ultrix.cc.o.d"
  "liboma_os.a"
  "liboma_os.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oma_os.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
