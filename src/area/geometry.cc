/**
 * @file
 * Validation and pretty-printing of cache/TLB geometries.
 */

#include "area/geometry.hh"

#include "support/bits.hh"
#include "support/logging.hh"
#include "support/table.hh"

namespace oma
{

void
CacheGeometry::validate() const
{
    fatalIf(!isPowerOfTwo(capacityBytes),
            "cache capacity must be a power of two: " + describe());
    fatalIf(!isPowerOfTwo(lineBytes) || lineBytes < bytesPerWord,
            "cache line must be a power-of-two number of words: " +
                describe());
    fatalIf(!isPowerOfTwo(assoc) || assoc == 0,
            "cache associativity must be a power of two: " + describe());
    fatalIf(capacityBytes < lineBytes * assoc,
            "cache needs at least one set: " + describe());
}

std::string
CacheGeometry::describe() const
{
    return fmtKBytes(capacityBytes) + " " + std::to_string(lineWords()) +
        "-word " + std::to_string(assoc) + "-way";
}

void
TlbGeometry::validate() const
{
    fatalIf(!isPowerOfTwo(entries) || entries == 0,
            "TLB entries must be a power of two: " + describe());
    if (!fullyAssociative()) {
        fatalIf(!isPowerOfTwo(assoc),
                "TLB associativity must be a power of two: " + describe());
        fatalIf(entries < assoc,
                "TLB needs at least one set: " + describe());
    }
}

std::string
TlbGeometry::describe() const
{
    return std::to_string(entries) + "-entry " +
        (fullyAssociative() ? std::string("full")
                            : std::to_string(assoc) + "-way");
}

} // namespace oma
