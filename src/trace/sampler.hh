/**
 * @file
 * Laha-style trace sampling.
 *
 * The paper collected 50 samples of 120k-200k references per workload
 * and validated miss-ratio estimators against full traces (error
 * < 10%). TraceSampler reproduces that methodology: it partitions the
 * underlying stream into randomly placed sample windows and exposes
 * per-sample boundaries so a consumer can (a) discard a warm-up prefix
 * of each sample to control cold-start bias, and (b) compute a
 * per-sample miss-ratio estimator.
 */

#ifndef OMA_TRACE_SAMPLER_HH
#define OMA_TRACE_SAMPLER_HH

#include <cstdint>

#include "support/rng.hh"
#include "trace/source.hh"

namespace oma
{

/** Parameters of a sampling run. */
struct SamplerParams
{
    std::uint64_t sampleCount = 50;     //!< Windows to take.
    std::uint64_t sampleLength = 160000; //!< References per window.
    /** Mean gap (references skipped) between windows. */
    std::uint64_t meanGap = 200000;
    std::uint64_t seed = 1;
};

/**
 * Wraps a source and emits only references inside sample windows.
 * next() additionally reports window boundaries via atWindowStart().
 */
class TraceSampler : public TraceSource
{
  public:
    TraceSampler(TraceSource &inner, const SamplerParams &params)
        : _inner(inner), _params(params), _rng(params.seed)
    {
        _remainingWindows = params.sampleCount;
        startGap();
    }

    bool
    next(MemRef &ref) override
    {
        _windowStart = false;
        while (true) {
            if (_inWindow) {
                if (_left == 0) {
                    _inWindow = false;
                    if (_remainingWindows == 0)
                        return false;
                    startGap();
                    continue;
                }
                if (!_inner.next(ref))
                    return false;
                if (_left == _params.sampleLength)
                    _windowStart = true;
                --_left;
                return true;
            }
            // In a gap: skip references without exposing them.
            MemRef skipped;
            while (_left > 0) {
                if (!_inner.next(skipped))
                    return false;
                --_left;
            }
            if (_remainingWindows == 0)
                return false;
            --_remainingWindows;
            _inWindow = true;
            _left = _params.sampleLength;
        }
    }

    /** True when the ref just returned began a new sample window. */
    bool atWindowStart() const { return _windowStart; }

  private:
    void
    startGap()
    {
        // Exponentially distributed gaps give uniformly random window
        // placement over the run (a Poisson sampling design).
        _left = _params.meanGap == 0
            ? 0
            : _rng.geometric(1.0 / static_cast<double>(_params.meanGap));
        _inWindow = false;
    }

    TraceSource &_inner;
    SamplerParams _params;
    Rng _rng;
    std::uint64_t _left = 0;
    std::uint64_t _remainingWindows = 0;
    bool _inWindow = false;
    bool _windowStart = false;
};

} // namespace oma

#endif // OMA_TRACE_SAMPLER_HH
