/**
 * @file
 * Implementation of the design-space allocator.
 */

#include "core/search.hh"

#include <algorithm>
#include <memory>

#include "obs/export.hh"
#include "support/logging.hh"
#include "support/threadpool.hh"

namespace oma
{

std::vector<TlbGeometry>
ConfigSpace::tlbGeometries() const
{
    std::vector<TlbGeometry> geoms;
    for (std::uint64_t entries : tlbEntries) {
        for (std::uint64_t ways : tlbWays) {
            if (ways <= entries)
                geoms.emplace_back(entries, ways);
        }
        if (entries <= tlbFullAssocMax)
            geoms.push_back(TlbGeometry::fullyAssoc(entries));
    }
    return geoms;
}

std::vector<CacheGeometry>
ConfigSpace::cacheGeometries(std::uint64_t max_ways) const
{
    std::vector<CacheGeometry> geoms;
    for (std::uint64_t kb : cacheKBytes) {
        for (std::uint64_t line : lineWords) {
            for (std::uint64_t ways : cacheWays) {
                if (ways > max_ways)
                    continue;
                const CacheGeometry geom =
                    CacheGeometry::fromWords(kb * 1024, line, ways);
                if (geom.capacityBytes < geom.lineBytes * geom.assoc)
                    continue; // needs at least one set
                geoms.push_back(geom);
            }
        }
    }
    return geoms;
}

AllocationSearch::AllocationSearch(const AreaModel &area,
                                   double budget_rbe)
    : _area(area), _budget(budget_rbe)
{
    fatalIf(budget_rbe <= 0, "area budget must be positive");
}

std::vector<Allocation>
AllocationSearch::rank(const ComponentCpiTables &tables,
                       std::uint64_t max_cache_ways, unsigned threads,
                       obs::Observation *observation) const
{
    std::unique_ptr<obs::Span> span;
    if (observation != nullptr)
        span = std::make_unique<obs::Span>(observation->metrics,
                                           "search/rank");

    // Precompute areas once per distinct geometry.
    std::vector<double> tlb_area(tables.tlbGeoms.size());
    for (std::size_t i = 0; i < tables.tlbGeoms.size(); ++i)
        tlb_area[i] = _area.tlbArea(tables.tlbGeoms[i]);
    std::vector<double> i_area(tables.icacheGeoms.size());
    for (std::size_t i = 0; i < tables.icacheGeoms.size(); ++i)
        i_area[i] = _area.cacheArea(tables.icacheGeoms[i]);
    std::vector<double> d_area(tables.dcacheGeoms.size());
    for (std::size_t i = 0; i < tables.dcacheGeoms.size(); ++i)
        d_area[i] = _area.cacheArea(tables.dcacheGeoms[i]);

    // Score one TLB-geometry shard: exactly the serial enumeration
    // restricted to TLB index t, emitting allocations in (i, d) order.
    const auto score_shard = [&](std::size_t t,
                                 std::vector<Allocation> &shard) {
        for (std::size_t i = 0; i < tables.icacheGeoms.size(); ++i) {
            if (tables.icacheGeoms[i].assoc > max_cache_ways)
                continue;
            const double ti_area = tlb_area[t] + i_area[i];
            if (ti_area > _budget)
                continue;
            for (std::size_t d = 0; d < tables.dcacheGeoms.size(); ++d) {
                if (tables.dcacheGeoms[d].assoc > max_cache_ways)
                    continue;
                const double area = ti_area + d_area[d];
                if (area > _budget)
                    continue;
                Allocation a;
                a.tlb = tables.tlbGeoms[t];
                a.icache = tables.icacheGeoms[i];
                a.dcache = tables.dcacheGeoms[d];
                a.areaRbe = area;
                a.tlbCpi = tables.tlbCpi[t];
                a.icacheCpi = tables.icacheCpi[i];
                a.dcacheCpi = tables.dcacheCpi[d];
                a.cpi = tables.baseCpi + a.tlbCpi + a.icacheCpi +
                    a.dcacheCpi;
                shard.push_back(a);
            }
        }
    };

    // Concatenating the shards in TLB order reproduces the serial
    // (t, i, d) emission order, so the stable sort below sees the
    // same sequence — and breaks CPI ties identically — no matter
    // how many lanes scored the shards.
    std::vector<std::vector<Allocation>> shards(tables.tlbGeoms.size());
    parallelFor(threads, 0, shards.size(), [&](std::size_t t) {
        score_shard(t, shards[t]);
        if (observation != nullptr &&
            observation->progress != nullptr)
            observation->progress->tick();
    });

    std::vector<Allocation> out;
    std::size_t total = 0;
    for (const auto &shard : shards)
        total += shard.size();
    out.reserve(total);
    for (auto &shard : shards)
        out.insert(out.end(), shard.begin(), shard.end());

    std::stable_sort(out.begin(), out.end(),
                     [](const Allocation &x, const Allocation &y) {
                         return x.cpi < y.cpi;
                     });
    for (std::size_t r = 0; r < out.size(); ++r)
        out[r].rank = r + 1;

    if (observation != nullptr) {
        obs::MetricRegistry &m = observation->metrics;
        std::uint64_t eligible_i = 0, eligible_d = 0;
        for (const CacheGeometry &g : tables.icacheGeoms)
            eligible_i += g.assoc <= max_cache_ways;
        for (const CacheGeometry &g : tables.dcacheGeoms)
            eligible_d += g.assoc <= max_cache_ways;
        m.add("search/shards", shards.size());
        m.add("search/candidates",
              tables.tlbGeoms.size() * eligible_i * eligible_d);
        m.add("search/in_budget", out.size());
        obs::exportRanking(m, out);
    }
    return out;
}

} // namespace oma
