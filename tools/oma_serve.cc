/**
 * @file
 * oma_serve: allocation-as-a-service over the oma::api facade.
 *
 * Speaks NDJSON: each request line is one oma-allocation-request-v1
 * object, each answer line the matching response (or oma-error-v1).
 * Two transports share the QueryEngine serving discipline
 * (docs/MODEL.md §14):
 *
 *  * `--once` reads requests from stdin until EOF and writes the
 *    answers to stdout in input order — no networking, so CI and the
 *    e2e tests drive the full daemon path through a pipe.
 *  * Otherwise the daemon binds a Unix-domain socket (`--socket`),
 *    answers one connection at a time (the client half-closes after
 *    its last line) and keeps running until a control line
 *    `{"schema":"oma-control-v1","cmd":"shutdown"}` arrives.
 *
 * Identical lines in one batch coalesce onto a single computation
 * (`serve/dedup_hits`), repeated questions across batches are served
 * warm from the artifact store (`serve/warm_hits`), and distinct
 * requests compute on at most `--max-inflight` lanes. On exit the
 * daemon saves a run report carrying every serve counter, so CI can
 * gate on the dedupe/warm behaviour (scripts/check_run_report.py).
 */

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "api/json.hh"
#include "api/query_engine.hh"
#include "obs/report.hh"
#include "support/logging.hh"

namespace
{

using namespace oma;

struct ServeOptions
{
    bool once = false;
    std::string socketPath = "oma_serve.sock";
    std::string storeDir;
    std::string reportName = "oma_serve";
    unsigned maxInflight = 4;
    std::size_t maxBatch = 64;
};

void
usage()
{
    std::cerr
        << "usage: oma_serve [--once] [--socket PATH]\n"
        << "                 [--store-dir DIR] [--max-inflight N]\n"
        << "                 [--max-batch N] [--report NAME]\n"
        << "\n"
        << "Answers oma-allocation-request-v1 NDJSON lines with\n"
        << "oma-allocation-response-v1 lines, one per request, in\n"
        << "input order.\n"
        << "  --once          serve stdin -> stdout, exit at EOF\n"
        << "  --socket PATH   Unix-domain socket to listen on\n"
        << "                  (default oma_serve.sock)\n"
        << "  --store-dir DIR artifact store root (default: the\n"
        << "                  OMA_STORE_DIR environment variable)\n"
        << "  --max-inflight N  distinct requests computed\n"
        << "                  concurrently per batch (default 4)\n"
        << "  --max-batch N   requests admitted per batch; the rest\n"
        << "                  are refused with an error (default 64)\n"
        << "  --report NAME   run-report name (default oma_serve)\n";
}

ServeOptions
parseOptions(int argc, char **argv)
{
    ServeOptions opt;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto value = [&]() -> std::string {
            fatalIf(i + 1 >= argc, "oma_serve: " + arg +
                    " requires a value");
            return argv[++i];
        };
        if (arg == "--once") {
            opt.once = true;
        } else if (arg == "--socket") {
            opt.socketPath = value();
        } else if (arg == "--store-dir") {
            opt.storeDir = value();
        } else if (arg == "--report") {
            opt.reportName = value();
        } else if (arg == "--max-inflight") {
            opt.maxInflight =
                unsigned(std::strtoul(value().c_str(), nullptr, 10));
            fatalIf(opt.maxInflight == 0,
                    "oma_serve: --max-inflight must be positive");
        } else if (arg == "--max-batch") {
            opt.maxBatch = std::strtoull(value().c_str(), nullptr, 10);
            fatalIf(opt.maxBatch == 0,
                    "oma_serve: --max-batch must be positive");
        } else if (arg == "--help" || arg == "-h") {
            usage();
            std::exit(0);
        } else {
            usage();
            fatal("oma_serve: unknown option " + arg);
        }
    }
    return opt;
}

/** True when @p line is a well-formed oma-control-v1 shutdown. */
bool
isShutdownLine(const std::string &line)
{
    api::JsonValue value;
    std::string error;
    if (!api::parseJson(line, value, error))
        return false;
    const api::JsonValue *schema = value.find("schema");
    const api::JsonValue *cmd = value.find("cmd");
    return schema != nullptr && cmd != nullptr &&
        schema->kind == api::JsonValue::Kind::String &&
        schema->string == "oma-control-v1" &&
        cmd->kind == api::JsonValue::Kind::String &&
        cmd->string == "shutdown";
}

/** The ack a control line earns. */
std::string
controlAck()
{
    return "{\"schema\":\"oma-control-v1\",\"ok\":true}";
}

/**
 * Answer one batch of raw lines: control lines are acked in place,
 * the rest go through QueryEngine::answerBatch. Returns the answers
 * in input order and sets @p shutdown when a shutdown line appeared.
 */
std::vector<std::string>
serveBatch(api::QueryEngine &engine, const std::vector<std::string> &lines,
           obs::Observation *observation, bool &shutdown)
{
    std::vector<std::string> answers(lines.size());
    std::vector<std::string> queries;
    std::vector<std::size_t> queryLines;
    for (std::size_t i = 0; i < lines.size(); ++i) {
        if (isShutdownLine(lines[i])) {
            shutdown = true;
            answers[i] = controlAck();
            continue;
        }
        queries.push_back(lines[i]);
        queryLines.push_back(i);
    }
    const std::vector<std::string> batch_answers =
        engine.answerBatch(queries, observation);
    for (std::size_t q = 0; q < queryLines.size(); ++q)
        answers[queryLines[q]] = batch_answers[q];
    return answers;
}

/** Split @p text into newline-terminated records, skipping blanks. */
std::vector<std::string>
splitLines(const std::string &text)
{
    std::vector<std::string> lines;
    std::size_t start = 0;
    while (start < text.size()) {
        std::size_t end = text.find('\n', start);
        if (end == std::string::npos)
            end = text.size();
        std::string line = text.substr(start, end - start);
        if (!line.empty() && line.back() == '\r')
            line.pop_back();
        if (!line.empty())
            lines.push_back(std::move(line));
        start = end + 1;
    }
    return lines;
}

/** Read until EOF on @p fd. */
std::string
readAll(int fd)
{
    std::string text;
    char buf[4096];
    while (true) {
        const ssize_t n = ::read(fd, buf, sizeof buf);
        if (n > 0) {
            text.append(buf, std::size_t(n));
            continue;
        }
        if (n == 0)
            return text;
        if (errno == EINTR)
            continue;
        fatal(std::string("oma_serve: read: ") + std::strerror(errno));
    }
}

void
writeAll(int fd, std::string_view data)
{
    while (!data.empty()) {
        const ssize_t n = ::write(fd, data.data(), data.size());
        if (n > 0) {
            data.remove_prefix(std::size_t(n));
            continue;
        }
        if (errno == EINTR)
            continue;
        fatal(std::string("oma_serve: write: ") + std::strerror(errno));
    }
}

int
serveOnce(api::QueryEngine &engine, obs::Observation *observation)
{
    std::string text;
    std::string line;
    while (std::getline(std::cin, line)) {
        text += line;
        text.push_back('\n');
    }
    bool shutdown = false;
    const std::vector<std::string> answers =
        serveBatch(engine, splitLines(text), observation, shutdown);
    for (const std::string &answer : answers)
        std::cout << answer << '\n';
    return 0;
}

int
serveSocket(api::QueryEngine &engine, const std::string &path,
            obs::Observation *observation)
{
    fatalIf(path.size() >= sizeof(sockaddr_un{}.sun_path),
            "oma_serve: socket path too long: " + path);
    const int listen_fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    fatalIf(listen_fd < 0, std::string("oma_serve: socket: ") +
            std::strerror(errno));
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    ::unlink(path.c_str());
    // oma-lint: allow(cast-audit): POSIX bind/accept take the
    // generic sockaddr view of sockaddr_un; the cast is the
    // sanctioned sockets-API idiom and sizeof passes the real type.
    if (::bind(listen_fd, reinterpret_cast<const sockaddr *>(&addr),
               sizeof addr) != 0)
        fatal("oma_serve: bind " + path + ": " + std::strerror(errno));
    if (::listen(listen_fd, 16) != 0)
        fatal(std::string("oma_serve: listen: ") + std::strerror(errno));
    inform("oma_serve: listening on " + path);

    bool shutdown = false;
    while (!shutdown) {
        const int client_fd = ::accept(listen_fd, nullptr, nullptr);
        if (client_fd < 0) {
            if (errno == EINTR)
                continue;
            fatal(std::string("oma_serve: accept: ") +
                  std::strerror(errno));
        }
        const std::string text = readAll(client_fd);
        const std::vector<std::string> answers = serveBatch(
            engine, splitLines(text), observation, shutdown);
        std::string reply;
        for (const std::string &answer : answers) {
            reply += answer;
            reply.push_back('\n');
        }
        writeAll(client_fd, reply);
        ::close(client_fd);
    }
    ::close(listen_fd);
    ::unlink(path.c_str());
    inform("oma_serve: shutdown");
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    const ServeOptions opt = parseOptions(argc, argv);
    api::QueryEngineConfig config;
    config.storeDir = opt.storeDir;
    config.maxInflight = opt.maxInflight;
    config.maxBatch = opt.maxBatch;
    api::QueryEngine engine(config);

    obs::RunReport report(opt.reportName);
    report.meta["mode"] = opt.once ? "once" : "socket";
    report.meta["store_dir"] = engine.store() != nullptr
        ? "configured" : "none";
    report.meta["max_inflight"] = std::to_string(opt.maxInflight);
    report.meta["max_batch"] = std::to_string(opt.maxBatch);
    obs::Observation observation;

    const int rc = opt.once
        ? serveOnce(engine, &observation)
        : serveSocket(engine, opt.socketPath, &observation);

    report.metrics.merge(observation.metrics);
    const std::string path = report.save();
    if (!path.empty())
        std::cerr << "[run report: " << path << "]\n";
    return rc;
}
