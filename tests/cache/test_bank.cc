/**
 * @file
 * Tests that a CacheBank behaves exactly like its member caches run
 * individually.
 */

#include <gtest/gtest.h>

#include "cache/bank.hh"
#include "support/rng.hh"

namespace oma
{
namespace
{

TEST(CacheBank, MatchesIndividualCaches)
{
    std::vector<CacheParams> configs;
    for (std::uint64_t kb : {2, 8}) {
        for (std::uint64_t ways : {1, 4}) {
            CacheParams p;
            p.geom = CacheGeometry(kb * 1024, 16, ways);
            configs.push_back(p);
        }
    }

    CacheBank bank;
    std::vector<Cache> individual;
    for (const auto &p : configs) {
        bank.add(p);
        individual.emplace_back(p);
    }
    ASSERT_EQ(bank.size(), configs.size());

    Rng rng(21);
    for (int i = 0; i < 20000; ++i) {
        const std::uint64_t addr = rng.below(1 << 16) & ~3ULL;
        const RefKind kind = static_cast<RefKind>(rng.below(3));
        bank.access(addr, kind);
        for (auto &cache : individual)
            cache.access(addr, kind);
    }

    for (std::size_t i = 0; i < configs.size(); ++i) {
        EXPECT_EQ(bank.at(i).stats().totalMisses(),
                  individual[i].stats().totalMisses());
        EXPECT_EQ(bank.at(i).stats().totalAccesses(),
                  individual[i].stats().totalAccesses());
        EXPECT_EQ(bank.at(i).stats().writeThroughWords,
                  individual[i].stats().writeThroughWords);
    }
}

TEST(CacheBank, EmptyBankIsHarmless)
{
    CacheBank bank;
    bank.access(0x1234, RefKind::Load);
    EXPECT_EQ(bank.size(), 0u);
}

TEST(CacheBankDeathTest, AtRejectsOutOfRangeIndex)
{
    CacheBank bank;
    CacheParams p;
    p.geom = CacheGeometry(2 * 1024, 16, 1);
    bank.add(p);
    const CacheBank &cbank = bank;
    EXPECT_DEATH((void)bank.at(1), "CacheBank::at\\(1\\): only 1");
    EXPECT_DEATH((void)cbank.at(7), "CacheBank::at\\(7\\): only 1");

    CacheBank empty;
    EXPECT_DEATH((void)empty.at(0), "only 0 caches");
}

} // namespace
} // namespace oma
