# Empty dependencies file for oma_trace.
# This may be replaced when dependencies are built.
