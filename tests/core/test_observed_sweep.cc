/**
 * @file
 * The observability determinism contract: attaching an
 * obs::Observation to ComponentSweep::run / AllocationSearch::rank
 * must never change the results — bitwise, at 1 and 4 threads — and
 * the collected counters must be a pure function of the work (equal
 * across thread counts, equal to the SweepResult they describe).
 */

#include <gtest/gtest.h>

#include <cstring>
#include <sstream>
#include <string>

#include "core/search.hh"
#include "core/sweep.hh"
#include "obs/export.hh"
#include "obs/report.hh"
#include "tests/obs/jsonlite.hh"

namespace oma
{
namespace
{

void
expectSameCacheStats(const CacheStats &a, const CacheStats &b,
                     const char *what, std::size_t i)
{
    for (unsigned k = 0; k < numRefKinds; ++k) {
        ASSERT_EQ(a.accesses[k], b.accesses[k]) << what << " " << i;
        ASSERT_EQ(a.misses[k], b.misses[k]) << what << " " << i;
    }
    ASSERT_EQ(a.lineFills, b.lineFills) << what << " " << i;
    ASSERT_EQ(a.writebacks, b.writebacks) << what << " " << i;
    ASSERT_EQ(a.writeThroughWords, b.writeThroughWords)
        << what << " " << i;
    ASSERT_EQ(a.compulsoryMisses, b.compulsoryMisses)
        << what << " " << i;
}

void
expectSameMmuStats(const MmuStats &a, const MmuStats &b, std::size_t i)
{
    ASSERT_EQ(a.translations, b.translations) << "tlb " << i;
    for (unsigned c = 0; c < numMissClasses; ++c) {
        ASSERT_EQ(a.counts[c], b.counts[c]) << "tlb " << i;
        ASSERT_EQ(a.cycles[c], b.cycles[c]) << "tlb " << i;
    }
    ASSERT_EQ(a.asidFlushes, b.asidFlushes) << "tlb " << i;
}

/** Bitwise double equality (== would conflate -0.0 and 0.0). */
bool
sameBits(double a, double b)
{
    return std::memcmp(&a, &b, sizeof a) == 0;
}

void
expectSameSweepResult(const SweepResult &plain, const SweepResult &obs)
{
    ASSERT_EQ(plain.instructions, obs.instructions);
    ASSERT_EQ(plain.references, obs.references);
    ASSERT_EQ(plain.icacheCount(), obs.icacheCount());
    ASSERT_EQ(plain.dcacheCount(), obs.dcacheCount());
    ASSERT_EQ(plain.tlbCount(), obs.tlbCount());
    for (std::size_t i = 0; i < plain.icacheCount(); ++i)
        expectSameCacheStats(plain.icache(i).stats,
                             obs.icache(i).stats, "icache", i);
    for (std::size_t i = 0; i < plain.dcacheCount(); ++i)
        expectSameCacheStats(plain.dcache(i).stats,
                             obs.dcache(i).stats, "dcache", i);
    for (std::size_t i = 0; i < plain.tlbCount(); ++i)
        expectSameMmuStats(plain.tlb(i).stats, obs.tlb(i).stats, i);
    EXPECT_TRUE(sameBits(plain.wbCpi, obs.wbCpi));
    EXPECT_TRUE(sameBits(plain.otherCpi, obs.otherCpi));
}

std::vector<CacheGeometry>
cacheSubset()
{
    std::vector<CacheGeometry> geoms;
    for (std::uint64_t kb : {2, 8})
        geoms.push_back(CacheGeometry::fromWords(kb * 1024, 4, 1));
    return geoms;
}

std::vector<TlbGeometry>
tlbSubset()
{
    return {TlbGeometry::fullyAssoc(32), TlbGeometry(128, 2)};
}

ComponentSweep
sweepUnderTest()
{
    return ComponentSweep(cacheSubset(), cacheSubset(), tlbSubset());
}

RunConfig
runConfig(unsigned threads)
{
    RunConfig rc;
    rc.references = 60000;
    rc.seed = 42;
    rc.threads = threads;
    return rc;
}

/** Sum of a SweepResult-derived quantity, for counter cross-checks. */
template <typename View>
std::uint64_t
sumCacheMisses(const SweepResult &r, std::size_t count, View view)
{
    std::uint64_t total = 0;
    for (std::size_t i = 0; i < count; ++i)
        total += view(r, i).stats.totalMisses();
    return total;
}

TEST(ObservedSweep, ObservationNeverChangesTheResultAt1And4Threads)
{
    // The issue's acceptance bar: metrics-on and metrics-off sweeps
    // produce bitwise-identical SweepResults at 1 and at 4 threads.
    const ComponentSweep sweep = sweepUnderTest();
    for (unsigned threads : {1u, 4u}) {
        SCOPED_TRACE(threads);
        const SweepResult plain = sweep.run(
            BenchmarkId::Mab, OsKind::Mach, runConfig(threads));
        obs::Observation observation;
        const SweepResult observed =
            sweep.run(BenchmarkId::Mab, OsKind::Mach,
                      runConfig(threads), &observation);
        expectSameSweepResult(plain, observed);
        EXPECT_FALSE(observation.metrics.empty());
    }
}

TEST(ObservedSweep, CountersAreThreadCountInvariant)
{
    // Event counters come from per-task shards merged in task order,
    // so they are a function of the work alone. Pool-shape metrics
    // (threadpool/*) and wall-clock gauges are configuration and
    // timing respectively, and are excluded by contract.
    const ComponentSweep sweep = sweepUnderTest();
    obs::Observation serial, parallel;
    (void)sweep.run(BenchmarkId::Mab, OsKind::Mach, runConfig(1),
                    &serial);
    (void)sweep.run(BenchmarkId::Mab, OsKind::Mach, runConfig(4),
                    &parallel);
    for (const auto &[name, value] : serial.metrics.counters()) {
        if (name.rfind("threadpool/", 0) == 0)
            continue;
        EXPECT_EQ(parallel.metrics.counter(name), value) << name;
    }
    ASSERT_EQ(serial.metrics.counters().size(),
              parallel.metrics.counters().size());
}

TEST(ObservedSweep, CountersMatchTheSweepResultTheyDescribe)
{
    const ComponentSweep sweep = sweepUnderTest();
    obs::Observation observation;
    const SweepResult r = sweep.run(BenchmarkId::Mab, OsKind::Mach,
                                    runConfig(2), &observation);
    const obs::MetricRegistry &m = observation.metrics;
    EXPECT_EQ(m.counter("icache/misses"),
              sumCacheMisses(r, r.icacheCount(),
                             [](const SweepResult &sr, std::size_t i) {
                                 return sr.icache(i);
                             }));
    EXPECT_EQ(m.counter("dcache/misses"),
              sumCacheMisses(r, r.dcacheCount(),
                             [](const SweepResult &sr, std::size_t i) {
                                 return sr.dcache(i);
                             }));
    std::uint64_t tlb_refills = 0;
    for (std::size_t i = 0; i < r.tlbCount(); ++i)
        tlb_refills += r.tlb(i).stats.refillCycles();
    EXPECT_EQ(m.counter("tlb/refill_cycles"), tlb_refills);
    EXPECT_EQ(m.counter("machine/instructions"), r.instructions);
    EXPECT_EQ(m.counter("trace/references"), r.references);
    EXPECT_EQ(m.counter("sweep/replays"), 1u);
    // Both phases timed exactly once.
    EXPECT_EQ(m.counter("calls/sweep/record"), 1u);
    EXPECT_EQ(m.counter("calls/sweep/replay"), 1u);
    EXPECT_GE(m.gauge("time_ms/sweep/replay"), 0.0);
}

TEST(ObservedSweep, ProgressTicksOncePerTask)
{
    const ComponentSweep sweep = sweepUnderTest();
    std::uint64_t last_total = 0;
    obs::Progress progress(
        1 + 2 * cacheSubset().size() + tlbSubset().size(),
        [&last_total](std::uint64_t, std::uint64_t total) {
            last_total = total;
        },
        2);
    obs::Observation observation;
    observation.progress = &progress;
    (void)sweep.run(BenchmarkId::Mab, OsKind::Mach, runConfig(4),
                    &observation);
    // One tick per task: reference machine + every cache + every TLB.
    EXPECT_EQ(progress.done(),
              1 + 2 * cacheSubset().size() + tlbSubset().size());
    EXPECT_EQ(last_total, progress.done());
}

TEST(ObservedSweep, ReportFromAnObservedRunIsSchemaValid)
{
    // End to end: sweep -> exporters -> RunReport -> JSON with
    // per-component counters and phase timings, as a bench emits it.
    const ComponentSweep sweep = sweepUnderTest();
    obs::Observation observation;
    const SweepResult r = sweep.run(BenchmarkId::Mab, OsKind::Mach,
                                    runConfig(2), &observation);
    obs::RunReport report("observed_sweep_unit");
    report.meta["benchmark"] = "mab";
    report.metrics = observation.metrics;
    obs::exportSweepResult(report.metrics, r);

    std::ostringstream os;
    report.writeJson(os);
    omatest::JsonLite doc;
    ASSERT_TRUE(doc.parse(os.str()));
    EXPECT_EQ(doc.str("schema"), "oma-run-report-v1");
    EXPECT_GT(doc.num("counters.icache/misses"), 0.0);
    EXPECT_GT(doc.num("counters.dcache/misses"), 0.0);
    EXPECT_GT(doc.num("counters.tlb/misses"), 0.0);
    EXPECT_TRUE(doc.has("gauges.time_ms/sweep/replay"));
    EXPECT_TRUE(doc.has("gauges.time_ms/sweep/record"));
    EXPECT_TRUE(
        doc.has("histograms.icache/misses_per_config.buckets"));
}

TEST(ObservedSearch, ObservationNeverChangesTheRanking)
{
    const ComponentSweep sweep = sweepUnderTest();
    std::vector<SweepResult> runs;
    runs.push_back(
        sweep.run(BenchmarkId::Mab, OsKind::Mach, runConfig(2)));
    const ComponentCpiTables tables = ComponentCpiTables::average(
        runs, MachineParams::decstation3100());
    const AllocationSearch search(AreaModel(), 250000.0);

    const auto plain = search.rank(tables, 8, 4);
    obs::Observation observation;
    const auto observed = search.rank(tables, 8, 4, &observation);

    ASSERT_EQ(plain.size(), observed.size());
    for (std::size_t i = 0; i < plain.size(); ++i) {
        ASSERT_TRUE(plain[i].tlb == observed[i].tlb) << i;
        ASSERT_TRUE(plain[i].icache == observed[i].icache) << i;
        ASSERT_TRUE(plain[i].dcache == observed[i].dcache) << i;
        ASSERT_TRUE(sameBits(plain[i].cpi, observed[i].cpi)) << i;
    }
    EXPECT_EQ(observation.metrics.counter("search/ranked"),
              plain.size());
    EXPECT_EQ(observation.metrics.counter("calls/search/rank"), 1u);
    if (!plain.empty()) {
        EXPECT_TRUE(
            sameBits(observation.metrics.gauge("search/best_cpi"),
                     plain.front().cpi));
    }
}

} // namespace
} // namespace oma
