/**
 * @file
 * Tests for the Wada-style access-time model (the paper's first
 * suggested extension).
 */

#include <gtest/gtest.h>

#include "area/access_time.hh"

namespace oma
{
namespace
{

TEST(AccessTime, CacheTimeGrowsWithCapacity)
{
    AccessTimeModel model;
    double prev = 0.0;
    for (std::uint64_t kb : {2, 4, 8, 16, 32, 64}) {
        const double t = model.cacheAccessTime(
            CacheGeometry::fromWords(kb * 1024, 4, 1));
        EXPECT_GT(t, prev) << kb;
        prev = t;
    }
}

TEST(AccessTime, AssociativityCostsTime)
{
    AccessTimeModel model;
    double prev = 0.0;
    for (std::uint64_t ways : {1, 2, 4, 8}) {
        const double t = model.cacheAccessTime(
            CacheGeometry::fromWords(16 * 1024, 4, ways));
        EXPECT_GT(t, prev) << ways;
        prev = t;
    }
}

TEST(AccessTime, BigFullyAssociativeTlbsAreSlow)
{
    // Section 5.2: "large fully-associative TLBs are difficult to
    // build and can have excessively long access times."
    AccessTimeModel model;
    const double fa256 = model.tlbAccessTime(TlbGeometry::fullyAssoc(256));
    const double sa512 = model.tlbAccessTime(TlbGeometry(512, 8));
    EXPECT_GT(fa256, sa512);
    // And FA access time grows with entries.
    EXPECT_GT(model.tlbAccessTime(TlbGeometry::fullyAssoc(256)),
              model.tlbAccessTime(TlbGeometry::fullyAssoc(64)));
}

TEST(AccessTime, SmallDirectMappedIsFastest)
{
    AccessTimeModel model;
    const double small_dm = model.cacheAccessTime(
        CacheGeometry::fromWords(2 * 1024, 4, 1));
    for (std::uint64_t kb : {8, 32}) {
        for (std::uint64_t ways : {2, 8}) {
            EXPECT_LT(small_dm,
                      model.cacheAccessTime(CacheGeometry::fromWords(
                          kb * 1024, 4, ways)));
        }
    }
}

TEST(AccessTime, DeterministicAndPositive)
{
    AccessTimeModel model;
    const CacheGeometry g = CacheGeometry::fromWords(8 * 1024, 8, 2);
    EXPECT_GT(model.cacheAccessTime(g), 0.0);
    EXPECT_DOUBLE_EQ(model.cacheAccessTime(g),
                     model.cacheAccessTime(g));
    const TlbGeometry t(128, 4);
    EXPECT_GT(model.tlbAccessTime(t), 0.0);
}

class AccessTimeSweep
    : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(AccessTimeSweep, LongerLinesNeverSlowerAtFixedCapacity)
{
    // At fixed capacity, longer lines mean fewer (shorter) bitline
    // columns and fewer decode bits, at the price of a wider row —
    // the column term dominates in the model, so access time is
    // non-increasing in line size.
    const std::uint64_t kb = GetParam();
    AccessTimeModel model;
    double prev = 1e18;
    for (std::uint64_t words : {1, 2, 4, 8}) {
        const double t = model.cacheAccessTime(
            CacheGeometry::fromWords(kb * 1024, words, 1));
        EXPECT_LE(t, prev + 1e-9) << words;
        prev = t;
    }
}

INSTANTIATE_TEST_SUITE_P(Capacities, AccessTimeSweep,
                         ::testing::Values(2u, 8u, 32u));

} // namespace
} // namespace oma
