/**
 * @file
 * Figure 5: area of set-associative TLBs relative to fully-
 * associative TLBs of the same size.
 */

#include <iostream>

#include "area/mqf.hh"
#include "bench/common.hh"
#include "support/table.hh"

using namespace oma;

int
main()
{
    omabench::banner("Set-associative TLB area relative to fully-"
                     "associative TLBs",
                     "Figure 5");

    omabench::BenchReport report("fig5");
    AreaModel model;
    TextTable table({"Entries", "1-way / full", "4-way / full",
                     "8-way / full"});
    for (std::uint64_t entries : {16, 32, 64, 128, 256, 512}) {
        const double fa =
            model.tlbArea(TlbGeometry::fullyAssoc(entries));
        std::vector<std::string> row = {std::to_string(entries)};
        for (std::uint64_t ways : {1, 4, 8}) {
            const double ratio =
                model.tlbArea(TlbGeometry(entries, ways)) / fa;
            report.metrics().add("area/ratio_points");
            report.metrics().set("area/ratio_" +
                                     std::to_string(entries) + "e_" +
                                     std::to_string(ways) + "w",
                                 ratio);
            row.push_back(fmtFixed(ratio, 2));
        }
        table.addRow(row);
    }
    table.print(std::cout);

    std::cout
        << "\nShape checks:\n"
        << "  * direct-mapped < 1.0 everywhere (always cheaper than "
           "full associativity);\n"
        << "  * 4-/8-way > 1.0 below 64 entries (full associativity "
           "is cheaper for small TLBs);\n"
        << "  * 4-/8-way ~ 0.5 at >= 256 entries (full associativity "
           "costs about twice as much).\n";
    return 0;
}
