/**
 * @file
 * Implementation of the artifact byte codecs.
 */

#include "store/codec.hh"

#include <cstring>
#include <vector>

namespace oma::store
{

namespace
{

void
appendU8(std::string &out, std::uint8_t v)
{
    out.push_back(char(v));
}

void
appendU32(std::string &out, std::uint32_t v)
{
    char buf[sizeof v];
    std::memcpy(buf, &v, sizeof v);
    out.append(buf, sizeof v);
}

void
appendU64(std::string &out, std::uint64_t v)
{
    char buf[sizeof v];
    std::memcpy(buf, &v, sizeof v);
    out.append(buf, sizeof v);
}

void
appendF64(std::string &out, double v)
{
    char buf[sizeof v];
    std::memcpy(buf, &v, sizeof v);
    out.append(buf, sizeof v);
}

/** Bounds-checked cursor over an encoded payload. */
class Reader
{
  public:
    explicit Reader(std::string_view in) : _in(in) {}

    bool
    u8(std::uint8_t &v)
    {
        if (remaining() < sizeof v)
            return fail();
        v = std::uint8_t(_in[_pos]);
        _pos += sizeof v;
        return true;
    }

    bool
    u32(std::uint32_t &v)
    {
        return raw(&v, sizeof v);
    }

    bool
    u64(std::uint64_t &v)
    {
        return raw(&v, sizeof v);
    }

    bool
    f64(double &v)
    {
        return raw(&v, sizeof v);
    }

    /** True when every byte was consumed and nothing failed. */
    [[nodiscard]] bool
    done() const
    {
        return _ok && _pos == _in.size();
    }

  private:
    bool
    raw(void *dst, std::size_t n)
    {
        if (remaining() < n)
            return fail();
        std::memcpy(dst, _in.data() + _pos, n);
        _pos += n;
        return true;
    }

    [[nodiscard]] std::size_t remaining() const
    {
        return _in.size() - _pos;
    }

    bool
    fail()
    {
        _ok = false;
        return false;
    }

    std::string_view _in;
    std::size_t _pos = 0;
    bool _ok = true;
};

} // namespace

std::string
encodeTrace(const RecordedTrace &trace)
{
    std::string out;
    out.reserve(24 + trace.size() * RecordedTrace::packedRefBytes +
                trace.events().size() * 21);
    appendU64(out, trace.size());
    appendU64(out, trace.events().size());
    appendF64(out, trace.otherCpi());
    trace.replay([&](const MemRef &ref) {
        appendU32(out, std::uint32_t(ref.vaddr));
        appendU32(out, std::uint32_t(ref.paddr));
        appendU8(out, std::uint8_t(ref.asid));
        appendU8(out, RecordedTrace::packFlags(ref));
    });
    for (const TraceEvent &e : trace.events()) {
        appendU64(out, e.index);
        appendU64(out, e.vpn);
        appendU32(out, e.asid);
        appendU8(out, e.global ? 1 : 0);
    }
    return out;
}

bool
decodeTrace(std::string_view payload, RecordedTrace &trace)
{
    Reader r(payload);
    std::uint64_t size = 0, event_count = 0;
    double other_cpi = 0.0;
    if (!r.u64(size) || !r.u64(event_count) || !r.f64(other_cpi))
        return false;

    // Events are framed after the reference columns, but
    // recordInvalidation() pins an event to the *current* append
    // position — so parse both sections first, then interleave.
    const std::size_t refs_bytes =
        std::size_t(size) * RecordedTrace::packedRefBytes;
    const std::size_t events_bytes = std::size_t(event_count) * 21;
    if (payload.size() != 24 + refs_bytes + events_bytes)
        return false;

    std::vector<TraceEvent> events;
    events.reserve(std::size_t(event_count));
    {
        Reader ev(payload.substr(24 + refs_bytes));
        for (std::uint64_t i = 0; i < event_count; ++i) {
            TraceEvent e{};
            std::uint8_t global = 0;
            if (!ev.u64(e.index) || !ev.u64(e.vpn) || !ev.u32(e.asid) ||
                !ev.u8(global)) {
                return false;
            }
            e.global = global != 0;
            events.push_back(e);
        }
        if (!ev.done())
            return false;
    }

    RecordedTrace decoded;
    std::size_t next_event = 0;
    for (std::uint64_t i = 0; i < size; ++i) {
        while (next_event < events.size() &&
               events[next_event].index == i) {
            const TraceEvent &e = events[next_event++];
            decoded.recordInvalidation(e.vpn, e.asid, e.global);
        }
        std::uint32_t vaddr = 0, paddr = 0;
        std::uint8_t asid = 0, flags = 0;
        if (!r.u32(vaddr) || !r.u32(paddr) || !r.u8(asid) ||
            !r.u8(flags)) {
            return false;
        }
        MemRef ref;
        ref.vaddr = vaddr;
        ref.paddr = paddr;
        ref.asid = asid;
        RecordedTrace::unpackFlags(flags, ref);
        decoded.append(ref);
    }
    // Events recorded after the final reference.
    for (; next_event < events.size(); ++next_event) {
        const TraceEvent &e = events[next_event];
        if (e.index != size)
            return false;
        decoded.recordInvalidation(e.vpn, e.asid, e.global);
    }
    decoded.setOtherCpi(other_cpi);
    trace = std::move(decoded);
    return true;
}

std::string
encodeCacheStats(const CacheStats &s)
{
    std::string out;
    appendU64(out, numRefKinds);
    for (unsigned k = 0; k < numRefKinds; ++k)
        appendU64(out, s.accesses[k]);
    for (unsigned k = 0; k < numRefKinds; ++k)
        appendU64(out, s.misses[k]);
    appendU64(out, s.lineFills);
    appendU64(out, s.writebacks);
    appendU64(out, s.writeThroughWords);
    appendU64(out, s.compulsoryMisses);
    return out;
}

bool
decodeCacheStats(std::string_view payload, CacheStats &s)
{
    Reader r(payload);
    std::uint64_t kinds = 0;
    if (!r.u64(kinds) || kinds != numRefKinds)
        return false;
    CacheStats decoded;
    for (unsigned k = 0; k < numRefKinds; ++k)
        if (!r.u64(decoded.accesses[k]))
            return false;
    for (unsigned k = 0; k < numRefKinds; ++k)
        if (!r.u64(decoded.misses[k]))
            return false;
    if (!r.u64(decoded.lineFills) || !r.u64(decoded.writebacks) ||
        !r.u64(decoded.writeThroughWords) ||
        !r.u64(decoded.compulsoryMisses) || !r.done()) {
        return false;
    }
    s = decoded;
    return true;
}

std::string
encodeMmuStats(const MmuStats &s)
{
    std::string out;
    appendU64(out, numMissClasses);
    appendU64(out, s.translations);
    for (unsigned c = 0; c < numMissClasses; ++c)
        appendU64(out, s.counts[c]);
    for (unsigned c = 0; c < numMissClasses; ++c)
        appendU64(out, s.cycles[c]);
    appendU64(out, s.asidFlushes);
    return out;
}

bool
decodeMmuStats(std::string_view payload, MmuStats &s)
{
    Reader r(payload);
    std::uint64_t classes = 0;
    if (!r.u64(classes) || classes != numMissClasses)
        return false;
    MmuStats decoded;
    if (!r.u64(decoded.translations))
        return false;
    for (unsigned c = 0; c < numMissClasses; ++c)
        if (!r.u64(decoded.counts[c]))
            return false;
    for (unsigned c = 0; c < numMissClasses; ++c)
        if (!r.u64(decoded.cycles[c]))
            return false;
    if (!r.u64(decoded.asidFlushes) || !r.done())
        return false;
    s = decoded;
    return true;
}

std::string
encodeMachineShard(const MachineShard &s)
{
    std::string out;
    appendU64(out, s.instructions);
    appendU64(out, s.icacheStall);
    appendU64(out, s.dcacheStall);
    appendU64(out, s.wbStall);
    appendU64(out, s.tlbStall);
    appendU64(out, s.wbStores);
    appendU64(out, s.wbStallCycles);
    return out;
}

bool
decodeMachineShard(std::string_view payload, MachineShard &s)
{
    Reader r(payload);
    MachineShard decoded;
    if (!r.u64(decoded.instructions) || !r.u64(decoded.icacheStall) ||
        !r.u64(decoded.dcacheStall) || !r.u64(decoded.wbStall) ||
        !r.u64(decoded.tlbStall) || !r.u64(decoded.wbStores) ||
        !r.u64(decoded.wbStallCycles) || !r.done()) {
        return false;
    }
    s = decoded;
    return true;
}

} // namespace oma::store
