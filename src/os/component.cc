/**
 * @file
 * Implementation of Component reference emission.
 */

#include "os/component.hh"

namespace oma
{

Component::Component(std::string name, AddressSpace &space, Mode mode,
                     const CodeRegion &code, const DataBehavior &data,
                     std::uint64_t seed)
    : _name(std::move(name)), _space(space), _mode(mode),
      _code(code, mix64(seed ^ 0xc0de)), _data(data, mix64(seed ^ 0xda7a))
{
}

MemRef
Component::fetchRef(std::uint64_t pc)
{
    MemRef ref;
    ref.vaddr = pc;
    ref.paddr = _space.paddrFor(pc);
    ref.asid = inKuseg(pc) ? _space.asid() : 0;
    ref.kind = RefKind::IFetch;
    ref.mode = _mode;
    ref.mapped = isMappedAddress(pc);
    ++_instrs;
    return ref;
}

MemRef
Component::dataRef(AddressSpace &space, std::uint64_t vaddr,
                   bool is_store) const
{
    MemRef ref;
    ref.vaddr = vaddr;
    ref.paddr = space.paddrFor(vaddr);
    ref.asid = inKuseg(vaddr) ? space.asid() : 0;
    ref.kind = is_store ? RefKind::Store : RefKind::Load;
    ref.mode = _mode;
    ref.mapped = isMappedAddress(vaddr);
    return ref;
}

void
Component::run(std::uint64_t instrs, TraceSink &sink)
{
    for (std::uint64_t i = 0; i < instrs; ++i) {
        sink.put(fetchRef(_code.step()));
        bool is_store = false;
        if (_data.refForInstr(is_store))
            sink.put(dataRef(_space, _data.nextAddr(is_store), is_store));
    }
}

void
Component::runPath(const CodePath &path, TraceSink &sink,
                   double data_per_instr)
{
    // Deterministic, sparse data mix along the path: every k-th
    // instruction references data, drawn from this component's mix.
    const std::uint64_t k = data_per_instr <= 0.0
        ? 0
        : static_cast<std::uint64_t>(1.0 / data_per_instr);
    for (std::uint64_t i = 0; i < path.instructions; ++i) {
        sink.put(fetchRef(path.pc(i)));
        if (k && (i % k) == k - 1) {
            // Alternate loads and stores 2:1 along invocation paths.
            const bool is_store = (i / k) % 3 == 2;
            sink.put(dataRef(_space, _data.nextAddr(is_store), is_store));
        }
    }
}

void
Component::copyLoop(AddressSpace &src_space, std::uint64_t src_base,
                    AddressSpace &dst_space, std::uint64_t dst_base,
                    std::uint64_t bytes, TraceSink &sink)
{
    // An 8-instruction unrolled loop in this component's text.
    const std::uint64_t loop_pc = _code.region().base;
    const std::uint64_t words = (bytes + 3) / 4;
    for (std::uint64_t w = 0; w < words; ++w) {
        sink.put(fetchRef(loop_pc + (w % 4) * 8));
        sink.put(dataRef(src_space, src_base + w * 4, false));
        sink.put(fetchRef(loop_pc + (w % 4) * 8 + 4));
        sink.put(dataRef(dst_space, dst_base + w * 4, true));
    }
}

} // namespace oma
