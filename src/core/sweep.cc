/**
 * @file
 * Implementation of component sweeps.
 */

#include "core/sweep.hh"

#include "obs/export.hh"
#include "support/logging.hh"
#include "support/threadpool.hh"

namespace oma
{

namespace
{

/**
 * Cache parameters for sweep slot @p index of bank @p bank_salt.
 * Every geometry owns a private Rng stream derived from its index, so
 * replacement tie-breaking (Random policy) is a function of the
 * configuration alone, never of which thread replays it or of which
 * other configurations share the run.
 */
CacheParams
sweepCacheParams(const CacheGeometry &geom, std::uint64_t bank_salt,
                 std::size_t index)
{
    CacheParams p;
    p.geom = geom;
    p.seed = mix64((bank_salt << 32) | std::uint64_t(index));
    return p;
}

constexpr std::uint64_t icacheBankSalt = 1;
constexpr std::uint64_t dcacheBankSalt = 2;

} // namespace

double
SweepResult::icacheCpi(std::size_t i, const MachineParams &mp) const
{
    const CacheStats &s = icacheStats[i];
    const double instr = double(std::max<std::uint64_t>(1, instructions));
    return double(s.totalMisses()) *
        double(mp.missPenalty(icacheGeoms[i])) / instr;
}

double
SweepResult::dcacheCpi(std::size_t i, const MachineParams &mp) const
{
    // The paper's cost/benefit step estimates the D-cache CPI
    // contribution as miss ratio x penalty uniformly (Section 5.4);
    // the cycle-level nuances of the reference machine (free store
    // allocation on one-word lines) belong to the Monster-style
    // baseline, not to the design-space scoring.
    const CacheStats &s = dcacheStats[i];
    const double instr = double(std::max<std::uint64_t>(1, instructions));
    return double(s.totalMisses()) *
        double(mp.missPenalty(dcacheGeoms[i])) / instr;
}

double
SweepResult::tlbCpi(std::size_t i) const
{
    // Pure refill service only (user + kernel misses): the modify,
    // invalid and page-fault classes are configuration-independent
    // constants (and over-weighted by finite trace length), so like
    // the paper's scoring they do not enter the per-configuration
    // contribution.
    const double instr = double(std::max<std::uint64_t>(1, instructions));
    return double(tlbStats[i].refillCycles()) / instr;
}

ComponentSweep::ComponentSweep(std::vector<CacheGeometry> icache_geoms,
                               std::vector<CacheGeometry> dcache_geoms,
                               std::vector<TlbGeometry> tlb_geoms,
                               const MachineParams &reference_machine)
    : _icacheGeoms(std::move(icache_geoms)),
      _dcacheGeoms(std::move(dcache_geoms)),
      _tlbGeoms(std::move(tlb_geoms)),
      _refMachine(reference_machine)
{
}

SweepResult
ComponentSweep::run(const WorkloadParams &workload, OsKind os,
                    const RunConfig &run,
                    obs::Observation *observation) const
{
    // Phase 1 (serial): capture the stream once. The workload RNG
    // and the OS model advance exactly as in a legacy single-pass
    // run; page-invalidation events land inline in the recording at
    // the index of the reference the OS fired them while producing,
    // which is where every replay applies them.
    System system(workload, os, run.seed);
    RecordedTrace trace;
    if (observation != nullptr) {
        obs::Span span(observation->metrics, "sweep/record");
        trace = system.record(run.references);
    } else {
        trace = system.record(run.references);
    }
    return replayTrace(trace, ThreadPool::resolveThreads(run.threads),
                       observation);
}

SweepResult
ComponentSweep::run(const RecordedTrace &trace, unsigned threads,
                    obs::Observation *observation) const
{
    return replayTrace(trace, ThreadPool::resolveThreads(threads),
                       observation);
}

SweepResult
ComponentSweep::replayTrace(const RecordedTrace &trace,
                            unsigned threads,
                            obs::Observation *observation) const
{
    // Phase 2 (parallel): replay per consumer. One flat index space
    // across the reference machine and all three component kinds
    // keeps every lane busy; each index owns its private simulator
    // and writes only its own result slot, so the reduction order is
    // fixed by construction and the results are bitwise identical
    // for any thread count.
    const std::size_t n_i = _icacheGeoms.size();
    const std::size_t n_d = _dcacheGeoms.size();
    const std::size_t n_t = _tlbGeoms.size();

    SweepResult result;
    result.references = trace.size();
    result.icacheGeoms = _icacheGeoms;
    result.dcacheGeoms = _dcacheGeoms;
    result.tlbGeoms = _tlbGeoms;
    result.icacheStats.resize(n_i);
    result.dcacheStats.resize(n_d);
    result.tlbStats.resize(n_t);
    result.otherCpi = trace.otherCpi();

    // Per-task metric shards: each task writes only its own slot, so
    // the post-loop merge (in task order) is a pure function of the
    // work — never of the schedule or lane count.
    std::vector<obs::MetricRegistry> shards(
        observation != nullptr ? 1 + n_i + n_d + n_t : 0);

    std::uint64_t wb_stall = 0;
    const auto body = [&](std::size_t task) {
        if (task == 0) {
            // Reference machine replay: stall attribution for the
            // configuration-independent CPI components.
            Machine machine(_refMachine);
            trace.replay(
                [&](const MemRef &ref) { machine.observe(ref); },
                [&](const TraceEvent &e) {
                    machine.mmu().invalidatePage(e.vpn, e.asid,
                                                 e.global);
                });
            result.instructions = machine.stalls().instructions;
            wb_stall = machine.stalls().wbStall;
            if (observation != nullptr) {
                obs::exportStallCounters(shards[task], "machine",
                                         machine.stalls());
                obs::exportWriteBuffer(shards[task], "wb",
                                       machine.writeBuffer());
            }
        } else if (task <= n_i) {
            const std::size_t i = task - 1;
            Cache cache(sweepCacheParams(_icacheGeoms[i],
                                         icacheBankSalt, i));
            trace.replayFetchPaddrs([&](std::uint64_t paddr) {
                cache.access(paddr, RefKind::IFetch);
            });
            result.icacheStats[i] = cache.stats();
            if (observation != nullptr)
                obs::exportCacheStats(shards[task], "icache",
                                      cache.stats());
        } else if (task <= n_i + n_d) {
            const std::size_t d = task - 1 - n_i;
            Cache cache(sweepCacheParams(_dcacheGeoms[d],
                                         dcacheBankSalt, d));
            trace.replayCachedData(
                [&](std::uint64_t paddr, RefKind kind) {
                    cache.access(paddr, kind);
                });
            result.dcacheStats[d] = cache.stats();
            if (observation != nullptr)
                obs::exportCacheStats(shards[task], "dcache",
                                      cache.stats());
        } else {
            const std::size_t t = task - 1 - n_i - n_d;
            TlbParams p;
            p.geom = _tlbGeoms[t];
            Mmu mmu(p, _refMachine.tlbPenalties);
            trace.replay(
                [&](const MemRef &ref) { mmu.translate(ref); },
                [&](const TraceEvent &e) {
                    mmu.invalidatePage(e.vpn, e.asid, e.global);
                });
            result.tlbStats[t] = mmu.stats();
            if (observation != nullptr)
                obs::exportMmuStats(shards[task], "tlb", mmu.stats());
        }
        if (observation != nullptr && observation->progress != nullptr)
            observation->progress->tick();
    };

    const std::size_t n_tasks = 1 + n_i + n_d + n_t;
    if (observation != nullptr) {
        // Run on an explicit pool so its work counters can be
        // exported alongside the component metrics.
        obs::MetricRegistry &m = observation->metrics;
        {
            obs::Span span(m, "sweep/replay");
            ThreadPool pool(threads);
            pool.parallelFor(0, n_tasks, body);
            obs::exportThreadPool(m, "threadpool", pool);
        }
        for (const obs::MetricRegistry &shard : shards)
            m.merge(shard);
        obs::exportRecordedTrace(m, "trace", trace);
        m.add("sweep/replays");
    } else {
        parallelFor(threads, 0, n_tasks, body);
    }

    const double instr =
        double(std::max<std::uint64_t>(1, result.instructions));
    result.wbCpi = double(wb_stall) / instr;
    return result;
}

ComponentCpiTables
ComponentCpiTables::average(const std::vector<SweepResult> &results,
                            const MachineParams &mp)
{
    panicIf(results.empty(), "cannot average zero sweep results");
    ComponentCpiTables tables;
    const SweepResult &first = results.front();
    tables.icacheGeoms = first.icacheGeoms;
    tables.dcacheGeoms = first.dcacheGeoms;
    tables.tlbGeoms = first.tlbGeoms;
    tables.icacheCpi.assign(tables.icacheGeoms.size(), 0.0);
    tables.dcacheCpi.assign(tables.dcacheGeoms.size(), 0.0);
    tables.tlbCpi.assign(tables.tlbGeoms.size(), 0.0);

    double wb = 0.0, other = 0.0;
    for (const auto &r : results) {
        panicIf(r.icacheGeoms.size() != tables.icacheGeoms.size() ||
                    r.dcacheGeoms.size() != tables.dcacheGeoms.size() ||
                    r.tlbGeoms.size() != tables.tlbGeoms.size(),
                "sweep results built from different geometry lists");
        for (std::size_t i = 0; i < tables.icacheCpi.size(); ++i)
            tables.icacheCpi[i] += r.icacheCpi(i, mp);
        for (std::size_t i = 0; i < tables.dcacheCpi.size(); ++i)
            tables.dcacheCpi[i] += r.dcacheCpi(i, mp);
        for (std::size_t i = 0; i < tables.tlbCpi.size(); ++i)
            tables.tlbCpi[i] += r.tlbCpi(i);
        wb += r.wbCpi;
        other += r.otherCpi;
    }
    const double n = double(results.size());
    for (auto &v : tables.icacheCpi)
        v /= n;
    for (auto &v : tables.dcacheCpi)
        v /= n;
    for (auto &v : tables.tlbCpi)
        v /= n;
    // Like the paper's Tables 6/7, the total CPI of an allocation is
    // 1 + TLB + I-cache + D-cache; write-buffer and non-memory
    // stalls are configuration-independent and kept separately.
    tables.baseCpi = 1.0;
    tables.wbCpi = wb / n;
    tables.otherCpi = other / n;
    return tables;
}

} // namespace oma
