file(REMOVE_RECURSE
  "liboma_tlb.a"
)
