/**
 * @file
 * oma_lint: determinism-contract static analysis for the repo's own
 * sources.
 *
 * The sweep and search engines guarantee bitwise serial/parallel
 * equivalence and record/replay identity (docs/MODEL.md); the runtime
 * suites verify those properties for the configurations they happen
 * to run. This pass is the static layer: a file/token scanner with
 * rule objects that rejects the nondeterminism hazards the runtime
 * suites cannot see coming — wall-clock reads, unseeded entropy,
 * result streams ordered by unordered-container iteration — plus the
 * hygiene rules (header guards, include discipline, audited casts)
 * that keep the tree analyzable at all.
 *
 * Findings can be suppressed per line with
 *
 *     // oma-lint: allow(<rule>[, <rule>...]): <reason>
 *
 * on the flagged line or the line directly above it, or per file with
 * `oma-lint: allow-file(<rule>): <reason>`. Rules that audit an
 * invariant (cast-audit, ordered-results) reject suppressions whose
 * reason is empty: the comment must state why the site is safe.
 */

#ifndef OMA_LINT_LINT_HH
#define OMA_LINT_LINT_HH

#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <string_view>
#include <vector>

namespace oma::lint
{

/** One diagnostic produced by a rule. */
struct Finding
{
    std::string file;
    std::size_t line = 0; //!< 1-based.
    std::string rule;
    std::string message;
    /** Suggested remediation, shown under --fixit. */
    std::string fixit;
    /** Suppressions must state a reason to silence this finding. */
    bool requiresReason = false;
};

/** One parsed `oma-lint: allow(...)` directive. */
struct Allowance
{
    std::set<std::string> rules;
    std::string reason;
};

/**
 * A source file prepared for rule checks: raw lines, code lines with
 * comments and string/char literals blanked (so banned tokens inside
 * literals or prose never fire), and the parsed suppressions.
 */
class SourceFile
{
  public:
    /**
     * @param include_root Directory project-relative includes resolve
     *        against (usually `<repo>/src`); empty disables
     *        cross-header unordered-name resolution.
     */
    SourceFile(std::string path, std::string_view content,
               std::string include_root = "");

    const std::string &path() const { return _path; }
    bool isHeader() const;

    /** Raw line @p line (1-based). */
    const std::string &rawLine(std::size_t line) const;
    /** Comment/literal-stripped line @p line (1-based). */
    const std::string &codeLine(std::size_t line) const;
    std::size_t lineCount() const { return _raw.size(); }

    /**
     * True when an allow() on @p line or in the contiguous //-comment
     * block directly above it — or an allow-file() anywhere — covers
     * @p rule. When @p need_reason is set, only a directive with a
     * non-empty reason counts.
     */
    bool allowed(const std::string &rule, std::size_t line,
                 bool need_reason) const;

    /**
     * Names of variables (locals or members) declared in this file
     * with an unordered associative container type, plus any declared
     * in the project headers it directly includes (resolved against
     * the include root when one was given).
     */
    std::vector<std::string> unorderedNames() const;

  private:
    std::string _path;
    std::string _includeRoot;
    std::vector<std::string> _raw;
    std::vector<std::string> _code;
    std::map<std::size_t, std::vector<Allowance>> _lineAllows;
    std::vector<Allowance> _fileAllows;
};

/** Interface every lint rule implements. */
class Rule
{
  public:
    virtual ~Rule() = default;

    /** Rule name as used in allow() directives. */
    virtual std::string_view name() const = 0;

    /** One-line rationale, shown by --list-rules. */
    virtual std::string_view rationale() const = 0;

    /** Append findings for @p file to @p out (pre-suppression). */
    virtual void check(const SourceFile &file,
                       std::vector<Finding> &out) const = 0;
};

/** The determinism-contract rule set, in reporting order. */
std::vector<std::unique_ptr<Rule>> makeDefaultRules();

/** Aggregate result of a lint run. */
struct LintReport
{
    std::vector<Finding> findings;
    std::size_t filesScanned = 0;

    bool clean() const { return findings.empty(); }
};

/**
 * Lint one in-memory buffer as if it were a file named @p path
 * (fixture entry point for the rule tests).
 */
LintReport lintBuffer(const std::string &path, std::string_view content,
                      const std::string &include_root = "");

/**
 * Lint every C++ source under @p paths (files or directories;
 * directories recurse, skipping build trees and VCS internals).
 * @p include_root is the directory project-relative includes resolve
 * against (usually `<repo>/src`); empty disables cross-header
 * unordered-name resolution.
 */
LintReport lintPaths(const std::vector<std::string> &paths,
                     const std::string &include_root = "");

/** Render @p report; one `file:line: [rule] message` per finding. */
void printReport(const LintReport &report, bool fixits,
                 std::ostream &os);

/**
 * Render @p report as a SARIF 2.1.0 log (the interchange format CI
 * annotation UIs ingest): one `run` for the oma_lint driver with the
 * full default rule set declared, and one `result` per finding
 * carrying its rule id, message (fixit appended when present), and
 * file/line location. Deterministic: byte-identical for identical
 * reports.
 */
void printSarif(const LintReport &report, std::ostream &os);

/**
 * Write one single-include translation unit per header under
 * @p src_root into @p out_dir, plus a `manifest.txt` naming every
 * generated TU — the list the `header_tu` CMake target compiles with
 * -fsyntax-only to prove each public header is self-contained.
 *
 * @return the generated TU paths, in manifest order.
 */
std::vector<std::string> emitHeaderTus(const std::string &src_root,
                                       const std::string &out_dir);

} // namespace oma::lint

#endif // OMA_LINT_LINT_HH
