/**
 * @file
 * Differential harness for the batched replay kernels: every batched
 * driver (cache fetch, cache data, MMU translate) must be
 * bitwise-identical to the scalar per-reference replay it replaces —
 * for recorded System traces and adversarially randomized synthetic
 * ones, for every replacement/write/allocate policy, for
 * compile-time-specialized and generic-fallback geometries, and
 * end-to-end through ComponentSweep at 1 and 4 threads including
 * warm artifact-store replays. Also pins the kernel dispatch table:
 * every specialization is actually selectable and geometries outside
 * the grid fall back to the generic kernel.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include <unistd.h>

#include "cache/replay.hh"
#include "core/sweep.hh"
#include "support/rng.hh"
#include "tlb/mips_va.hh"
#include "tlb/replay.hh"
#include "workload/system.hh"

namespace oma
{
namespace
{

void
expectSameCacheStats(const CacheStats &a, const CacheStats &b)
{
    for (unsigned k = 0; k < numRefKinds; ++k) {
        ASSERT_EQ(a.accesses[k], b.accesses[k]) << "kind " << k;
        ASSERT_EQ(a.misses[k], b.misses[k]) << "kind " << k;
    }
    ASSERT_EQ(a.lineFills, b.lineFills);
    ASSERT_EQ(a.writebacks, b.writebacks);
    ASSERT_EQ(a.writeThroughWords, b.writeThroughWords);
    ASSERT_EQ(a.compulsoryMisses, b.compulsoryMisses);
}

void
expectSameMmuStats(const MmuStats &a, const MmuStats &b)
{
    ASSERT_EQ(a.translations, b.translations);
    for (unsigned c = 0; c < numMissClasses; ++c) {
        ASSERT_EQ(a.counts[c], b.counts[c]) << "class " << c;
        ASSERT_EQ(a.cycles[c], b.cycles[c]) << "class " << c;
    }
    ASSERT_EQ(a.asidFlushes, b.asidFlushes);
}

/** Bitwise double equality (== would conflate -0.0 and 0.0). */
bool
sameBits(double a, double b)
{
    return std::memcmp(&a, &b, sizeof a) == 0;
}

void
expectSameSweepResult(const SweepResult &a, const SweepResult &b)
{
    ASSERT_EQ(a.instructions, b.instructions);
    ASSERT_EQ(a.references, b.references);
    ASSERT_EQ(a.icacheCount(), b.icacheCount());
    ASSERT_EQ(a.dcacheCount(), b.dcacheCount());
    ASSERT_EQ(a.tlbCount(), b.tlbCount());
    for (std::size_t i = 0; i < a.icacheCount(); ++i)
        expectSameCacheStats(a.icache(i).stats, b.icache(i).stats);
    for (std::size_t i = 0; i < a.dcacheCount(); ++i)
        expectSameCacheStats(a.dcache(i).stats, b.dcache(i).stats);
    for (std::size_t i = 0; i < a.tlbCount(); ++i)
        expectSameMmuStats(a.tlb(i).stats, b.tlb(i).stats);
    EXPECT_TRUE(sameBits(a.wbCpi, b.wbCpi));
    EXPECT_TRUE(sameBits(a.otherCpi, b.otherCpi));
}

// ----- scalar reference implementations -----

/** The pre-batching fetch leg: per-ref view + scalar access(). */
CacheStats
scalarFetchReplay(const RecordedTrace &trace, const CacheParams &p)
{
    Cache cache(p);
    trace.replayFetchPaddrs([&](std::uint64_t paddr) {
        cache.access(paddr, RefKind::IFetch);
    });
    return cache.stats();
}

/** The pre-batching data leg: per-ref view + scalar access(). */
CacheStats
scalarDataReplay(const RecordedTrace &trace, const CacheParams &p)
{
    Cache cache(p);
    trace.replayCachedData([&](std::uint64_t paddr, RefKind kind) {
        cache.access(paddr, kind);
    });
    return cache.stats();
}

/** The pre-batching TLB leg: event-interleaved view + translate(). */
MmuStats
scalarTranslateReplay(const RecordedTrace &trace, const TlbParams &p)
{
    Mmu mmu(p, MachineParams::decstation3100().tlbPenalties);
    trace.replay(
        [&](const MemRef &ref) { mmu.translate(ref); },
        [&](const TraceEvent &e) {
            mmu.invalidatePage(e.vpn, e.asid, e.global);
        });
    return mmu.stats();
}

MemRef
randomRef(Rng &rng)
{
    MemRef r;
    r.vaddr = rng.next() & 0xffffffff;
    r.paddr = rng.next() & 0x3fffffff;
    r.asid = std::uint32_t(rng.below(64));
    r.kind = static_cast<RefKind>(rng.below(3));
    r.mode = static_cast<Mode>(rng.below(2));
    r.mapped = rng.chance(0.8);
    return r;
}

/**
 * An adversarial synthetic stream: multiple chunks with an uneven
 * tail, a small enough page/ASID universe that invalidations hit live
 * pages, and events pinned at every awkward position — before the
 * first reference, straddling each chunk seam, and trailing past the
 * end (which must never fire).
 */
RecordedTrace
randomEventedTrace(std::uint64_t seed, std::uint64_t n)
{
    Rng rng(seed);
    RecordedTrace trace;
    for (std::uint64_t i = 0; i < n; ++i) {
        MemRef r = randomRef(rng);
        r.vaddr = rng.below(1 << 20); // kuseg, ~256 pages
        r.asid = std::uint32_t(rng.below(4));
        r.mapped = true;
        if (rng.chance(0.01))
            trace.recordInvalidation(rng.below(256),
                                     std::uint32_t(rng.below(4)),
                                     rng.chance(0.2));
        const std::uint64_t c = RecordedTrace::chunkRefs;
        if (i % c == 0 || i % c == c - 1)
            trace.recordInvalidation(vpnOf(r.vaddr), r.asid, false);
        trace.append(r);
    }
    trace.recordInvalidation(1, 1, false); // trailing: must not fire
    return trace;
}

/** Geometry grid for the differential runs: specialized rows from
 * every corner of the dispatch table plus generic fallbacks (16-way
 * and 64-word-line shapes have no compile-time kernel). */
std::vector<CacheGeometry>
diffGeometries()
{
    return {
        CacheGeometry::fromWords(2 * 1024, 1, 1),
        CacheGeometry::fromWords(8 * 1024, 4, 2),
        CacheGeometry::fromWords(16 * 1024, 16, 4),
        CacheGeometry::fromWords(32 * 1024, 32, 8),
        CacheGeometry::fromWords(32 * 1024, 4, 16), // generic: assoc
        CacheGeometry::fromWords(64 * 1024, 64, 1), // generic: line
    };
}

/** Policy variations exercising every counter the stats carry. */
std::vector<CacheParams>
diffParams()
{
    std::vector<CacheParams> out;
    unsigned i = 0;
    for (const CacheGeometry &g : diffGeometries()) {
        CacheParams p;
        p.geom = g;
        switch (i++ % 4) {
          case 0:
            break; // defaults: LRU, write-through, write-allocate
          case 1:
            p.write = WritePolicy::WriteBack;
            break;
          case 2:
            p.repl = ReplacementPolicy::Fifo;
            p.alloc = AllocPolicy::NoWriteAllocate;
            break;
          default:
            p.repl = ReplacementPolicy::Random;
            p.write = WritePolicy::WriteBack;
            p.seed = 7;
            break;
        }
        out.push_back(p);
    }
    return out;
}

TEST(BatchedReplay, CacheKernelsMatchScalarOnRecordedTrace)
{
    System system(benchmarkParams(BenchmarkId::Mpeg), OsKind::Ultrix,
                  42);
    const RecordedTrace trace = system.record(60000);
    for (const CacheParams &p : diffParams()) {
        SCOPED_TRACE(p.geom.describe());
        {
            Cache batched(p);
            const std::uint64_t refs =
                replayFetchBatched(trace, batched);
            SCOPED_TRACE(batched.batchKernelName());
            expectSameCacheStats(scalarFetchReplay(trace, p),
                                 batched.stats());
            EXPECT_EQ(refs, batched.stats().totalAccesses());
        }
        {
            Cache batched(p);
            const std::uint64_t refs =
                replayCachedDataBatched(trace, batched);
            SCOPED_TRACE(batched.batchKernelName());
            expectSameCacheStats(scalarDataReplay(trace, p),
                                 batched.stats());
            EXPECT_EQ(refs, batched.stats().totalAccesses());
        }
    }
}

TEST(BatchedReplay, CacheKernelsMatchScalarOnRandomizedTraces)
{
    // Synthetic streams with a full-chunk seam and an uneven tail;
    // unlike System output these exercise uncached (kseg1) filtering
    // via randomRef's unconstrained vaddrs.
    for (std::uint64_t seed : {3u, 5u, 9u}) {
        SCOPED_TRACE(seed);
        Rng rng(seed);
        RecordedTrace trace;
        const std::uint64_t n = RecordedTrace::chunkRefs + 4097;
        for (std::uint64_t i = 0; i < n; ++i)
            trace.append(randomRef(rng));
        for (const CacheParams &p : diffParams()) {
            SCOPED_TRACE(p.geom.describe());
            Cache fetch(p);
            replayFetchBatched(trace, fetch);
            expectSameCacheStats(scalarFetchReplay(trace, p),
                                 fetch.stats());
            Cache data(p);
            replayCachedDataBatched(trace, data);
            expectSameCacheStats(scalarDataReplay(trace, p),
                                 data.stats());
        }
    }
}

TEST(BatchedReplay, MmuBatchedMatchesScalarOnRecordedTraces)
{
    const std::vector<TlbGeometry> geoms = {
        TlbGeometry::fullyAssoc(32), TlbGeometry::fullyAssoc(64),
        TlbGeometry(128, 2), TlbGeometry(256, 4)};
    for (OsKind os : {OsKind::Ultrix, OsKind::Mach}) {
        System system(benchmarkParams(BenchmarkId::Mpeg), os, 42);
        const RecordedTrace trace = system.record(90000);
        // A trace without invalidation events would prove the event
        // interleave only vacuously.
        ASSERT_FALSE(trace.events().empty());
        for (const TlbGeometry &g : geoms) {
            SCOPED_TRACE(g.describe());
            TlbParams p;
            p.geom = g;
            Mmu mmu(p, MachineParams::decstation3100().tlbPenalties);
            const std::uint64_t refs =
                replayTranslateBatched(trace, mmu);
            EXPECT_EQ(refs, trace.size());
            expectSameMmuStats(scalarTranslateReplay(trace, p),
                               mmu.stats());
        }
    }
}

TEST(BatchedReplay, MmuBatchedHandlesChunkStraddlingEvents)
{
    // Events pinned exactly at chunk seams force the batched driver
    // off its dense fast path at the right reference — and nowhere
    // else. The trailing event must never fire on either path.
    const RecordedTrace trace =
        randomEventedTrace(31, 2 * RecordedTrace::chunkRefs + 137);
    TlbParams p;
    p.geom = TlbGeometry(64, 2);
    Mmu mmu(p, MachineParams::decstation3100().tlbPenalties);
    EXPECT_EQ(replayTranslateBatched(trace, mmu), trace.size());
    const MmuStats scalar = scalarTranslateReplay(trace, p);
    expectSameMmuStats(scalar, mmu.stats());
    // Non-vacuous: the invalidations actually produced faults.
    EXPECT_GT(scalar.counts[unsigned(MissClass::InvalidFault)], 0u);
}

TEST(BatchedReplay, DispatchTableCoversEverySpecialization)
{
    const auto rows = Cache::specializedGeometries();
    ASSERT_FALSE(rows.empty());
    std::set<std::string> names;
    for (const auto &[ways, words] : rows) {
        // 16 sets is enough to make any row's shape realizable.
        const CacheGeometry geom = CacheGeometry::fromWords(
            std::uint64_t(ways) * words * bytesPerWord * 16, words,
            ways);
        CacheParams p;
        p.geom = geom;
        const Cache cache(p);
        const std::string name = cache.batchKernelName();
        SCOPED_TRACE(geom.describe());
        EXPECT_EQ(name,
                  "w" + std::to_string(ways) + "x" +
                      std::to_string(words) + "w");
        names.insert(name);
    }
    // Every row selectable, and no two rows alias one kernel name.
    EXPECT_EQ(names.size(), rows.size());
}

TEST(BatchedReplay, OffGridGeometriesFallBackToGeneric)
{
    const auto rows = Cache::specializedGeometries();
    for (const CacheGeometry &geom :
         {CacheGeometry::fromWords(32 * 1024, 4, 16),
          CacheGeometry::fromWords(64 * 1024, 64, 1)}) {
        for (const auto &[ways, words] : rows)
            ASSERT_FALSE(ways == geom.assoc &&
                         words == geom.lineWords());
        CacheParams p;
        p.geom = geom;
        EXPECT_STREQ(Cache(p).batchKernelName(), "generic")
            << geom.describe();
    }
}

TEST(BatchedReplay, SweepMatchesScalarExpectationAcrossThreads)
{
    // End to end: the sweep engine (batched kernels inside) must
    // reproduce hand-rolled scalar replays configuration for
    // configuration, at 1 and 4 threads.
    const std::vector<CacheGeometry> caches = {
        CacheGeometry::fromWords(2 * 1024, 4, 1),
        CacheGeometry::fromWords(8 * 1024, 4, 1),
        CacheGeometry::fromWords(16 * 1024, 4, 2)};
    const std::vector<TlbGeometry> tlbs = {
        TlbGeometry::fullyAssoc(32), TlbGeometry(128, 2)};
    const ComponentSweep sweep(caches, caches, tlbs);

    System system(benchmarkParams(BenchmarkId::Mab), OsKind::Mach, 42);
    const RecordedTrace trace = system.record(60000);

    const SweepResult serial = sweep.run(trace, 1);
    expectSameSweepResult(serial, sweep.run(trace, 4));

    // The sweep's replacement default is LRU, so the per-slot RNG
    // seed cannot influence results and a default-seed scalar cache
    // is the exact expectation.
    for (std::size_t i = 0; i < caches.size(); ++i) {
        SCOPED_TRACE(caches[i].describe());
        CacheParams p;
        p.geom = caches[i];
        expectSameCacheStats(scalarFetchReplay(trace, p),
                             serial.icache(i).stats);
        expectSameCacheStats(scalarDataReplay(trace, p),
                             serial.dcache(i).stats);
    }
    for (std::size_t i = 0; i < tlbs.size(); ++i) {
        SCOPED_TRACE(tlbs[i].describe());
        TlbParams p;
        p.geom = tlbs[i];
        expectSameMmuStats(scalarTranslateReplay(trace, p),
                           serial.tlb(i).stats);
    }
}

TEST(BatchedReplay, WarmStoreReplayMatchesScalarExpectation)
{
    // Cold store run (live batched simulation, persists shards) and
    // warm rerun (decodes v3-encoded shards and trace, simulates
    // nothing) must both land on the scalar expectation bitwise.
    const std::vector<CacheGeometry> caches = {
        CacheGeometry::fromWords(4 * 1024, 4, 2)};
    const std::vector<TlbGeometry> tlbs = {TlbGeometry::fullyAssoc(32)};
    const ComponentSweep sweep(caches, caches, tlbs);

    RunConfig rc;
    rc.references = 50000;
    rc.seed = 42;
    rc.threads = 1;
    ::unsetenv("OMA_STORE_DIR");
    rc.storeDir = testing::TempDir() + "/oma_batched_store." +
        std::to_string(::getpid());
    std::filesystem::remove_all(rc.storeDir);

    System system(benchmarkParams(BenchmarkId::Mpeg), OsKind::Ultrix,
                  rc.seed);
    const RecordedTrace trace = system.record(rc.references);

    const SweepResult cold =
        sweep.run(BenchmarkId::Mpeg, OsKind::Ultrix, rc);
    rc.threads = 4;
    obs::Observation warm_obs;
    const SweepResult warm =
        sweep.run(BenchmarkId::Mpeg, OsKind::Ultrix, rc, &warm_obs);
    expectSameSweepResult(cold, warm);
    EXPECT_EQ(warm_obs.metrics.counter("store/misses"), 0u);
    EXPECT_EQ(warm_obs.metrics.counter("sweep/records"), 0u);

    CacheParams cp;
    cp.geom = caches[0];
    expectSameCacheStats(scalarFetchReplay(trace, cp),
                         warm.icache(0).stats);
    expectSameCacheStats(scalarDataReplay(trace, cp),
                         warm.dcache(0).stats);
    TlbParams tp;
    tp.geom = tlbs[0];
    expectSameMmuStats(scalarTranslateReplay(trace, tp),
                       warm.tlb(0).stats);
    std::filesystem::remove_all(rc.storeDir);
}

} // namespace
} // namespace oma
