/**
 * @file
 * Example: export the paper's figure series as CSV for plotting.
 *
 * Writes one CSV per figure into an output directory:
 *   fig7_tlb_service.csv   (size, class, seconds)
 *   fig8_tlb_relative.csv  (entries, ways, relative service time)
 *   fig9_icache.csv        (os, size_kb, line_words, miss_ratio, cpi)
 *   fig10_icache_assoc.csv (os, size_kb, ways, miss_ratio, cpi)
 *   areas.csv              (structure, parameter, rbe)
 *
 * Usage: export_figures [out_dir] [refs_per_workload]
 */

#include <filesystem>
#include <fstream>
#include <iostream>

#include "api/query_engine.hh"
#include "area/mqf.hh"
#include "core/sweep.hh"
#include "support/logging.hh"
#include "tlb/tapeworm.hh"

using namespace oma;

namespace
{

std::ofstream
open(const std::filesystem::path &dir, const std::string &name)
{
    std::ofstream out(dir / name);
    fatalIf(!out, "cannot create " + (dir / name).string());
    return out;
}

void
exportAreas(const std::filesystem::path &dir)
{
    AreaModel model;
    std::ofstream out = open(dir, "areas.csv");
    out << "structure,parameter,rbe\n";
    for (std::uint64_t entries : {16, 32, 64, 128, 256, 512}) {
        for (std::uint64_t ways : {1, 2, 4, 8}) {
            out << "tlb_" << ways << "way," << entries << ","
                << model.tlbArea(TlbGeometry(entries, ways)) << "\n";
        }
        out << "tlb_full," << entries << ","
            << model.tlbArea(TlbGeometry::fullyAssoc(entries)) << "\n";
    }
    for (std::uint64_t kb : {2, 4, 8, 16, 32, 64}) {
        for (std::uint64_t words : {1, 2, 4, 8}) {
            out << "cache_" << words << "w," << kb << ","
                << model.cacheArea(
                       CacheGeometry::fromWords(kb * 1024, words, 1))
                << "\n";
        }
    }
}

void
exportFig7(const std::filesystem::path &dir, std::uint64_t refs)
{
    const std::vector<std::uint64_t> sizes = {32, 64, 128, 256, 512};
    const TlbPenalties penalties;
    std::vector<std::array<double, numMissClasses>> seconds(
        sizes.size());
    for (auto &row : seconds)
        row.fill(0.0);

    for (BenchmarkId id : allBenchmarks()) {
        const WorkloadParams &wl = benchmarkParams(id);
        System system(wl, OsKind::Mach, 42);
        std::vector<TlbParams> configs;
        for (std::uint64_t entries : sizes) {
            TlbParams p;
            p.geom = TlbGeometry::fullyAssoc(entries);
            configs.push_back(p);
        }
        Tapeworm tapeworm(configs, penalties);
        system.setInvalidateHook(
            [&](std::uint64_t vpn, std::uint32_t asid, bool global) {
                tapeworm.invalidatePage(vpn, asid, global);
            });
        MemRef ref;
        std::uint64_t instructions = 0;
        for (std::uint64_t i = 0; i < refs; ++i) {
            system.next(ref);
            instructions += ref.isFetch();
            tapeworm.observe(ref);
        }
        const double scale =
            wl.nominalInstructions / double(instructions);
        for (std::size_t s = 0; s < sizes.size(); ++s) {
            for (unsigned c = 0; c < numMissClasses; ++c) {
                seconds[s][c] +=
                    double(tapeworm.at(s).stats().cycles[c]) * scale /
                    penalties.clockHz;
            }
        }
    }

    std::ofstream out = open(dir, "fig7_tlb_service.csv");
    out << "entries,class,seconds\n";
    for (std::size_t s = 0; s < sizes.size(); ++s) {
        for (unsigned c = 0; c < numMissClasses; ++c) {
            out << sizes[s] << ","
                << missClassName(static_cast<MissClass>(c)) << ","
                << seconds[s][c] << "\n";
        }
    }
}

void
exportIcacheGrids(const std::filesystem::path &dir, std::uint64_t refs)
{
    const std::vector<std::uint64_t> kb_sizes = {2, 4, 8, 16, 32};
    const std::vector<std::uint64_t> lines = {1, 2, 4, 8, 16, 32};
    const std::vector<std::uint64_t> ways = {1, 2, 4, 8};
    const MachineParams mp = MachineParams::decstation3100();

    std::vector<CacheGeometry> geoms;
    for (std::uint64_t kb : kb_sizes)
        for (std::uint64_t words : lines)
            geoms.push_back(
                CacheGeometry::fromWords(kb * 1024, words, 1));
    const std::size_t dm_count = geoms.size();
    for (std::uint64_t kb : kb_sizes)
        for (std::uint64_t w : ways)
            geoms.push_back(CacheGeometry::fromWords(kb * 1024, 4, w));

    api::QueryEngine engine;
    api::SweepGrid grid;
    grid.icacheGeoms = geoms;
    grid.dcacheGeoms = {CacheGeometry::fromWords(8 * 1024, 4, 1)};
    grid.tlbGeoms = {TlbGeometry::fullyAssoc(64)};

    std::ofstream f9 = open(dir, "fig9_icache.csv");
    std::ofstream f10 = open(dir, "fig10_icache_assoc.csv");
    f9 << "os,size_kb,line_words,miss_ratio,cpi\n";
    f10 << "os,size_kb,ways,miss_ratio,cpi\n";

    for (OsKind os : {OsKind::Ultrix, OsKind::Mach}) {
        std::vector<double> miss(geoms.size(), 0.0);
        std::vector<double> cpi(geoms.size(), 0.0);
        for (BenchmarkId id : allBenchmarks()) {
            api::AllocationRequest request;
            request.workloads = {id};
            request.os = os;
            request.references = refs;
            const SweepResult r =
                engine.sweep(request, nullptr, &grid).front();
            for (std::size_t i = 0; i < geoms.size(); ++i) {
                miss[i] += r.icache(i).missRatio() / numBenchmarks;
                cpi[i] += r.icache(i).cpi(mp) / numBenchmarks;
            }
        }
        for (std::size_t i = 0; i < geoms.size(); ++i) {
            const CacheGeometry &g = geoms[i];
            if (i < dm_count) {
                f9 << osKindName(os) << ","
                   << g.capacityBytes / 1024 << "," << g.lineWords()
                   << "," << miss[i] << "," << cpi[i] << "\n";
            } else {
                f10 << osKindName(os) << ","
                    << g.capacityBytes / 1024 << "," << g.assoc << ","
                    << miss[i] << "," << cpi[i] << "\n";
            }
        }
    }
}

void
exportFig8(const std::filesystem::path &dir, std::uint64_t refs)
{
    std::vector<TlbParams> configs;
    {
        TlbParams reference;
        reference.geom = TlbGeometry::fullyAssoc(256);
        configs.push_back(reference);
    }
    const std::vector<std::uint64_t> sizes = {64, 128, 256, 512};
    const std::vector<std::uint64_t> ways = {1, 2, 4, 8};
    for (std::uint64_t entries : sizes) {
        for (std::uint64_t w : ways) {
            TlbParams p;
            p.geom = TlbGeometry(entries, w);
            configs.push_back(p);
        }
    }
    Tapeworm tapeworm(configs, TlbPenalties());
    System system(benchmarkParams(BenchmarkId::VideoPlay),
                  OsKind::Mach, 42);
    system.setInvalidateHook(
        [&](std::uint64_t vpn, std::uint32_t asid, bool global) {
            tapeworm.invalidatePage(vpn, asid, global);
        });
    MemRef ref;
    for (std::uint64_t i = 0; i < refs; ++i) {
        system.next(ref);
        tapeworm.observe(ref);
    }
    const double reference =
        double(tapeworm.at(0).stats().totalServiceCycles());

    std::ofstream out = open(dir, "fig8_tlb_relative.csv");
    out << "entries,ways,relative\n";
    std::size_t idx = 1;
    for (std::uint64_t entries : sizes) {
        for (std::uint64_t w : ways) {
            out << entries << "," << w << ","
                << double(tapeworm.at(idx++)
                              .stats()
                              .totalServiceCycles()) /
                    reference
                << "\n";
        }
    }
}

} // namespace

int
main(int argc, char **argv)
{
    const std::filesystem::path dir =
        argc > 1 ? argv[1] : "figures_csv";
    const std::uint64_t refs =
        argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 800000;
    std::filesystem::create_directories(dir);

    std::cout << "Exporting area curves...\n";
    exportAreas(dir);
    std::cout << "Exporting Figure 7 (TLB service time)...\n";
    exportFig7(dir, refs);
    std::cout << "Exporting Figure 8 (relative TLB service)...\n";
    exportFig8(dir, refs);
    std::cout << "Exporting Figures 9/10 (I-cache grids)...\n";
    exportIcacheGrids(dir, refs);
    std::cout << "Done: CSVs in " << dir << "\n";
    return 0;
}
