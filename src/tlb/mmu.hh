/**
 * @file
 * Software-managed TLB handler model (R2000 style).
 *
 * The R2000 takes a trap on every TLB miss and the operating system
 * refills the TLB in software, so miss *class* determines cost: user
 * misses take the fast uTLB handler (~20 cycles), kernel (kseg2)
 * misses go through the general exception path (~300 cycles), modify
 * and invalid faults are costlier still, and first-touch page faults
 * are an OS-level cost that is independent of TLB geometry. The Mmu
 * couples a Tlb with per-page OS state to classify and cost every
 * miss, including the nested kernel miss a user refill suffers when
 * the page-table page itself is not mapped by the TLB.
 */

#ifndef OMA_TLB_MMU_HH
#define OMA_TLB_MMU_HH

#include <cstdint>
#include <unordered_map>

#include "support/fingerprint.hh"
#include "tlb/mips_va.hh"
#include "tlb/tlb.hh"
#include "trace/memref.hh"

namespace oma
{

/** Classification of TLB service events. */
enum class MissClass : unsigned
{
    UserMiss = 0,   //!< kuseg refill via the fast uTLB handler.
    KernelMiss = 1, //!< kseg2 refill via the general exception path.
    ModifyFault = 2, //!< First store to a clean page.
    InvalidFault = 3, //!< Access to an OS-invalidated page.
    PageFault = 4,  //!< First touch; TLB-size independent ("Other").
};

constexpr unsigned numMissClasses = 5;

/** Display name of a miss class. */
const char *missClassName(MissClass c);

/** Handler costs in CPU cycles for each miss class. */
struct TlbPenalties
{
    std::uint64_t userMiss = 20;
    std::uint64_t kernelMiss = 300;
    std::uint64_t modifyFault = 375;
    std::uint64_t invalidFault = 336;
    std::uint64_t pageFault = 800;

    /** DECstation 3100 clock, for service-time-in-seconds plots. */
    double clockHz = 16.67e6;

    [[nodiscard]] std::uint64_t
    cyclesFor(MissClass c) const
    {
        switch (c) {
          case MissClass::UserMiss:
            return userMiss;
          case MissClass::KernelMiss:
            return kernelMiss;
          case MissClass::ModifyFault:
            return modifyFault;
          case MissClass::InvalidFault:
            return invalidFault;
          case MissClass::PageFault:
            return pageFault;
        }
        return 0;
    }

    /** Append every cost-determining field to a fingerprint. */
    void
    fingerprint(Fingerprint &fp) const
    {
        fp.u64("tlb_pen.user_miss", userMiss);
        fp.u64("tlb_pen.kernel_miss", kernelMiss);
        fp.u64("tlb_pen.modify_fault", modifyFault);
        fp.u64("tlb_pen.invalid_fault", invalidFault);
        fp.u64("tlb_pen.page_fault", pageFault);
    }
};

/** Per-class event and cycle counters. */
struct MmuStats
{
    std::uint64_t translations = 0; //!< Mapped references seen.
    std::uint64_t counts[numMissClasses] = {};
    std::uint64_t cycles[numMissClasses] = {};
    /** Whole-TLB flushes taken on ASID switches (ASID-less mode). */
    std::uint64_t asidFlushes = 0;

    [[nodiscard]] std::uint64_t
    totalServiceCycles() const
    {
        std::uint64_t sum = 0;
        for (auto c : cycles)
            sum += c;
        return sum;
    }

    /** Cycles that shrink with a better TLB (excludes page faults). */
    [[nodiscard]] std::uint64_t
    geometryDependentCycles() const
    {
        return totalServiceCycles() -
            cycles[unsigned(MissClass::PageFault)];
    }

    /**
     * Pure refill cycles (user + kernel misses): the component the
     * paper's cost/benefit step scores TLB configurations by. The
     * modify/invalid/page-fault classes are configuration-independent
     * constants and are excluded.
     */
    [[nodiscard]] std::uint64_t
    refillCycles() const
    {
        return cycles[unsigned(MissClass::UserMiss)] +
            cycles[unsigned(MissClass::KernelMiss)];
    }

    [[nodiscard]] std::uint64_t
    totalMisses() const
    {
        std::uint64_t sum = 0;
        for (auto c : counts)
            sum += c;
        return sum;
    }
};

/**
 * The software-managed MMU: a Tlb plus the OS page metadata needed to
 * classify misses. Owns its page state so independently configured
 * Mmu instances can replay the same reference stream (Tapeworm).
 */
class Mmu
{
  public:
    Mmu(const TlbParams &params, const TlbPenalties &penalties);

    /**
     * Translate one reference.
     *
     * @return TLB handler cycles incurred (0 on a TLB hit by a clean
     *         access). First-touch page faults are recorded in the
     *         stats ("Other") but excluded from the returned stall
     *         time: the fault handler runs as ordinary kernel
     *         execution.
     */
    std::uint64_t translate(const MemRef &ref);

    /**
     * Translate one packed trace reference (columns straight out of
     * a RecordedTrace chunk, no MemRef materialization): exactly
     * equivalent to translate() on the decoded reference. @p flags
     * is the packed trace flag byte (kind + mode + mapped bits).
     */
    std::uint64_t translatePacked(std::uint32_t vaddr,
                                  std::uint8_t asid,
                                  std::uint8_t flags);

    /**
     * OS invalidation of a page (external pager, pageout, COW). The
     * next access takes an invalid fault.
     */
    void invalidatePage(std::uint64_t vpn, std::uint32_t asid,
                        bool global);

    [[nodiscard]] const MmuStats &stats() const { return _stats; }
    void resetStats() { _stats = MmuStats(); }

    Tlb &tlb() { return _tlb; }
    [[nodiscard]] const Tlb &tlb() const { return _tlb; }
    [[nodiscard]] const TlbPenalties &penalties() const
    {
        return _penalties;
    }

    /** Service time in seconds at the configured clock. */
    double
    serviceSeconds() const
    {
        return double(_stats.totalServiceCycles()) / _penalties.clockHz;
    }

  private:
    struct PageFlags
    {
        bool touched = false;
        bool dirty = false;
        bool invalidated = false;
    };

    static std::uint64_t
    pageKey(std::uint64_t vpn, std::uint32_t asid, bool global)
    {
        return global ? ((1ULL << 63) | vpn)
                      : ((std::uint64_t(asid) << 32) | vpn);
    }

    std::uint64_t charge(MissClass c);

    /** The translation body behind both translate() entry points,
     * past the unmapped-reference gate. */
    std::uint64_t translateMapped(std::uint64_t vaddr,
                                  std::uint32_t asid, bool store);

    /**
     * Refill for a missing page-table page. Charged as a nested
     * kernel miss when @p charge_miss is set (uTLB handler path);
     * free when the refill is a side effect of page-fault handling.
     */
    std::uint64_t fillPtePage(std::uint32_t asid, std::uint64_t user_vpn,
                              bool charge_miss = true);

    Tlb _tlb;
    TlbPenalties _penalties;
    MmuStats _stats;
    // oma-lint: allow(ordered-results): point lookups by page key
    // only; never iterated, so traversal order cannot reach results.
    std::unordered_map<std::uint64_t, PageFlags> _pages;
    std::uint32_t _currentAsid = 0;
    bool _asidSeen = false;
    bool _flushOnSwitch;
};

} // namespace oma

#endif // OMA_TLB_MMU_HH
