/**
 * @file
 * Shared pipeline for the Table 6 / Table 7 benches: sweep the full
 * Table 5 configuration grid over the benchmark suite under Mach,
 * average the per-component CPI contributions, and rank allocations
 * under the 250,000-rbe budget.
 */

#ifndef OMA_BENCH_ALLOC_COMMON_HH
#define OMA_BENCH_ALLOC_COMMON_HH

#include <iostream>

#include "bench/common.hh"
#include "core/search.hh"
#include "support/table.hh"

namespace omabench
{

/** Paper's on-chip memory budget (Section 5.4). */
constexpr double paperBudgetRbe = 250000.0;

/**
 * Rank allocations of @p tables through the query API: the benches'
 * spelling of api::QueryEngine::rank (exhaustive strategy, full
 * list). @p max_ways is the associativity restriction (8 = Table 6,
 * 2 = Table 7).
 */
inline std::vector<oma::Allocation>
rankAllocations(const oma::ComponentCpiTables &tables,
                std::uint64_t max_ways, BenchReport *report = nullptr,
                double budget_rbe = paperBudgetRbe)
{
    oma::api::QueryEngine engine;
    oma::api::AllocationRequest request;
    request.budgetRbe = budget_rbe;
    request.maxCacheWays = max_ways;
    request.topK = 0; // the paper's tables sample deep ranks
    return engine
        .rank(request, tables,
              report != nullptr ? report->observation() : nullptr)
        .allocations;
}

/** Measure the suite-averaged component CPI tables under Mach.
 * Extension axes of @p space (victim, write-buffer, L2) ride the same
 * sweep as heterogeneous component slots. With a @p report, every
 * sweep feeds the bench's observation (counters, phase timings,
 * optional progress) and the simulated reference volume is credited
 * toward its refs/sec. */
inline oma::ComponentCpiTables
measureMachTables(const oma::ConfigSpace &space,
                  BenchReport *report = nullptr)
{
    using namespace oma;
    SweepSuiteSpec spec;
    spec.icacheGeoms = space.cacheGeometries();
    spec.dcacheGeoms = space.cacheGeometries();
    spec.tlbGeoms = space.tlbGeometries();
    spec.components = space.extensionSlots();
    spec.oses = {OsKind::Mach};
    spec.announce = true;
    const auto runs = runSweepSuite(spec, report);
    std::cout << "\n";
    return ComponentCpiTables::average(
        runs.front().results, MachineParams::decstation3100());
}

/** "+4-line victim", "4-entry WB", "32-KB L2" style summary of an
 * allocation's extension components ("-" when classic). */
inline std::string
describeExtras(const oma::Allocation &a)
{
    std::string extras;
    const auto append = [&extras](const std::string &part) {
        if (!extras.empty())
            extras += ", ";
        extras += part;
    };
    if (a.victimEntries != 0)
        append(std::to_string(a.victimEntries) + "-line victim");
    if (a.unified)
        append("unified L1");
    if (a.hasL2)
        append(oma::fmtKBytes(a.l2.capacityBytes) + " L2");
    if (a.wbEntries != 0)
        append(std::to_string(a.wbEntries) + "-entry WB");
    return extras.empty() ? "-" : extras;
}

/** Print Table 5 (the configuration space considered). */
inline void
printTable5(const oma::ConfigSpace &space)
{
    using namespace oma;
    std::cout << "Table 5 - configurations considered:\n";
    TextTable table({"Structure", "Total capacity",
                     "Associativity", "Line (words)"});
    table.addRow({"TLB", "64 - 512 entries",
                  "1/2/4/8-way + full (<= 64 entries)", "-"});
    table.addRow({"I- and D-cache", "2-KB - 32-KB", "1/2/4/8-way",
                  "1 2 4 8 16 32"});
    table.print(std::cout);
    std::cout << "  TLB configurations: "
              << space.tlbGeometries().size()
              << ", cache configurations: "
              << space.cacheGeometries().size() << " each\n\n";
}

/** Print ranked allocations in the paper's row format. */
inline void
printAllocations(const std::vector<oma::Allocation> &ranked,
                 const std::vector<std::size_t> &rows)
{
    using namespace oma;
    TextTable table({"Rank", "TLB", "I-cache", "D-cache",
                     "Total cost (rbes)", "Total CPI"});
    for (std::size_t row : rows) {
        if (row >= ranked.size())
            continue;
        const Allocation &a = ranked[row];
        table.addRow({std::to_string(a.rank), a.tlb.describe(),
                      a.icache.describe(), a.dcache.describe(),
                      fmtGrouped(std::uint64_t(a.areaRbe)),
                      fmtFixed(a.cpi, 3)});
    }
    table.print(std::cout);
}

} // namespace omabench

#endif // OMA_BENCH_ALLOC_COMMON_HH
