/**
 * @file
 * Tests for the System trace generator.
 */

#include <gtest/gtest.h>

#include <map>

#include "workload/system.hh"

namespace oma
{
namespace
{

WorkloadParams
lightWorkload()
{
    WorkloadParams wl;
    wl.name = "test";
    wl.codeFootprint = 16 * 1024;
    wl.syscallPerInstr = 1.0 / 2000;
    wl.syscallBurstMean = 1.0;
    wl.framePerInstr = 1.0 / 20000;
    wl.frameBytes = 4096;
    return wl;
}

TEST(System, ProducesReferencesIndefinitely)
{
    System system(lightWorkload(), OsKind::Ultrix, 1);
    MemRef r;
    for (int i = 0; i < 100000; ++i)
        ASSERT_TRUE(system.next(r));
}

TEST(System, DeterministicPerSeed)
{
    System a(lightWorkload(), OsKind::Mach, 5);
    System b(lightWorkload(), OsKind::Mach, 5);
    System c(lightWorkload(), OsKind::Mach, 6);
    MemRef ra, rb, rc;
    bool differs = false;
    for (int i = 0; i < 50000; ++i) {
        ASSERT_TRUE(a.next(ra));
        ASSERT_TRUE(b.next(rb));
        ASSERT_TRUE(c.next(rc));
        ASSERT_EQ(ra.vaddr, rb.vaddr);
        ASSERT_EQ(ra.paddr, rb.paddr);
        ASSERT_EQ(ra.kind, rb.kind);
        differs |= (ra.vaddr != rc.vaddr);
    }
    EXPECT_TRUE(differs);
}

TEST(System, MixesUserAndKernelActivity)
{
    System system(lightWorkload(), OsKind::Ultrix, 2);
    MemRef r;
    std::uint64_t user = 0, kernel = 0;
    for (int i = 0; i < 200000; ++i) {
        system.next(r);
        (r.isKernel() ? kernel : user)++;
    }
    EXPECT_GT(user, 0u);
    EXPECT_GT(kernel, 0u);
    const double frac = system.userInstructionFraction();
    EXPECT_GT(frac, 0.1);
    EXPECT_LT(frac, 0.99);
}

TEST(System, MachInvolvesServerAddressSpaces)
{
    System ultrix(lightWorkload(), OsKind::Ultrix, 3);
    System mach(lightWorkload(), OsKind::Mach, 3);
    auto asids = [](System &system) {
        std::map<std::uint32_t, std::uint64_t> seen;
        MemRef r;
        for (int i = 0; i < 200000; ++i) {
            system.next(r);
            ++seen[r.asid];
        }
        return seen;
    };
    const auto u = asids(ultrix);
    const auto m = asids(mach);
    EXPECT_FALSE(u.count(layout::bsdServerAsid));
    EXPECT_TRUE(m.count(layout::bsdServerAsid));
    // X server participates in both (frames flow in this workload).
    EXPECT_TRUE(u.count(layout::xServerAsid));
    EXPECT_TRUE(m.count(layout::xServerAsid));
}

TEST(System, SyscallRateApproximatelyHonoured)
{
    WorkloadParams wl = lightWorkload();
    wl.framePerInstr = 0.0;
    wl.vmPerInstr = 0.0;
    wl.timerPerInstr = 0.0;
    wl.syscallPerInstr = 1.0 / 1000;
    wl.syscallBurstMean = 1.0;
    wl.syscalls = {{ServiceKind::Stat, 1.0, 0}};
    System system(wl, OsKind::Ultrix, 4);
    // Count app instructions per kernel entry.
    MemRef r;
    std::uint64_t app_instr = 0, entries = 0;
    bool in_kernel = false;
    for (int i = 0; i < 400000; ++i) {
        system.next(r);
        if (!r.isFetch())
            continue;
        if (r.isKernel() && !in_kernel)
            ++entries;
        in_kernel = r.isKernel();
        if (!r.isKernel())
            ++app_instr;
    }
    ASSERT_GT(entries, 50u);
    const double interval = double(app_instr) / double(entries);
    EXPECT_NEAR(interval, 1000.0, 300.0);
}

TEST(System, BurstsClusterSyscalls)
{
    WorkloadParams wl = lightWorkload();
    wl.framePerInstr = 0.0;
    wl.vmPerInstr = 0.0;
    wl.timerPerInstr = 0.0;
    wl.syscallPerInstr = 1.0 / 5000;
    wl.syscallBurstMean = 8.0;
    wl.syscallBurstGap = 200.0;
    wl.syscalls = {{ServiceKind::Stat, 1.0, 0}};
    System system(wl, OsKind::Ultrix, 5);
    // Measure gaps (in app instructions) between kernel entries:
    // with bursting most gaps are short, a few are very long.
    MemRef r;
    std::uint64_t gap = 0;
    bool in_kernel = false;
    std::uint64_t short_gaps = 0, long_gaps = 0;
    for (int i = 0; i < 600000; ++i) {
        system.next(r);
        if (!r.isFetch())
            continue;
        if (r.isKernel()) {
            if (!in_kernel) {
                if (gap < 2000)
                    ++short_gaps;
                else
                    ++long_gaps;
                gap = 0;
            }
            in_kernel = true;
        } else {
            in_kernel = false;
            ++gap;
        }
    }
    EXPECT_GT(short_gaps, 2 * long_gaps);
    EXPECT_GT(long_gaps, 0u);
}

TEST(System, OtherCpiBlendsUserAndKernelRates)
{
    WorkloadParams wl = lightWorkload();
    wl.userOtherCpi = 0.30;
    wl.kernelOtherCpi = 0.02;
    System system(wl, OsKind::Mach, 6);
    MemRef r;
    for (int i = 0; i < 100000; ++i)
        system.next(r);
    const double other = system.otherCpiSoFar();
    EXPECT_GT(other, 0.02);
    EXPECT_LT(other, 0.30);
}

TEST(System, InvalidateHookFires)
{
    WorkloadParams wl = lightWorkload();
    wl.vmPerInstr = 1.0 / 5000;
    System system(wl, OsKind::Mach, 7);
    int invalidations = 0;
    system.setInvalidateHook(
        [&](std::uint64_t, std::uint32_t, bool) { ++invalidations; });
    MemRef r;
    for (int i = 0; i < 300000; ++i)
        system.next(r);
    EXPECT_GT(invalidations, 0);
}

} // namespace
} // namespace oma
