/**
 * @file
 * Calibration anchors for the MQF area model.
 *
 * The default AreaParams are fit to the cost figures the paper itself
 * reports; these tests pin that fit so parameter changes that drift
 * away from the paper's cost column are caught. Tolerances reflect
 * the model's own published accuracy (typical error < 10%, maximum
 * 20.1%).
 */

#include <gtest/gtest.h>

#include "area/mqf.hh"

namespace oma
{
namespace
{

double
allocationArea(const AreaModel &model, const TlbGeometry &tlb,
               const CacheGeometry &icache, const CacheGeometry &dcache)
{
    return model.tlbArea(tlb) + model.cacheArea(icache) +
        model.cacheArea(dcache);
}

TEST(MqfCalibration, Table6Row1TotalCost)
{
    // Table 6 row 1: 512-entry 8-way TLB + 16-KB 8-word 8-way I-cache
    // + 8-KB 8-word 8-way D-cache = 163,438 rbe.
    AreaModel model;
    const double area = allocationArea(
        model, TlbGeometry(512, 8),
        CacheGeometry::fromWords(16 * 1024, 8, 8),
        CacheGeometry::fromWords(8 * 1024, 8, 8));
    EXPECT_NEAR(area, 163438.0, 0.10 * 163438.0);
}

TEST(MqfCalibration, Table6Row4TotalCost)
{
    // Table 6 row 4: 512 8-way TLB + 32-KB 16-word 8-way I +
    // 8-KB 8-word 8-way D = 249,089 rbe.
    AreaModel model;
    const double area = allocationArea(
        model, TlbGeometry(512, 8),
        CacheGeometry::fromWords(32 * 1024, 16, 8),
        CacheGeometry::fromWords(8 * 1024, 8, 8));
    EXPECT_NEAR(area, 249089.0, 0.10 * 249089.0);
}

TEST(MqfCalibration, Table7Row1TotalCost)
{
    // Table 7 row 1: 512 8-way TLB + 32-KB 8-word 2-way I +
    // 8-KB 4-word 2-way D = 239,259 rbe.
    AreaModel model;
    const double area = allocationArea(
        model, TlbGeometry(512, 8),
        CacheGeometry::fromWords(32 * 1024, 8, 2),
        CacheGeometry::fromWords(8 * 1024, 4, 2));
    EXPECT_NEAR(area, 239259.0, 0.10 * 239259.0);
}

TEST(MqfCalibration, Table7Rank1529TotalCost)
{
    // Table 7 #1529: 64-entry 4-way TLB + 8-KB 1-word DM I +
    // 16-KB 2-word DM D = 176,909 rbe.
    AreaModel model;
    const double area = allocationArea(
        model, TlbGeometry(64, 4),
        CacheGeometry::fromWords(8 * 1024, 1, 1),
        CacheGeometry::fromWords(16 * 1024, 2, 1));
    EXPECT_NEAR(area, 176909.0, 0.12 * 176909.0);
}

TEST(MqfCalibration, BigSetAssociativeTlbCostsAbout19kRbe)
{
    // Section 5.4: "a 512-entry, 8-way set-associative TLB costs just
    // 19,000 rbes".
    AreaModel model;
    EXPECT_NEAR(model.tlbArea(TlbGeometry(512, 8)), 19000.0,
                0.15 * 19000.0);
}

TEST(MqfCalibration, FullAssocCostsTwiceSetAssocAt256Entries)
{
    // Figure 5: for TLBs of >= 64 entries, full associativity costs
    // about twice as much as 4- or 8-way set associativity.
    AreaModel model;
    const double fa = model.tlbArea(TlbGeometry::fullyAssoc(256));
    const double sa8 = model.tlbArea(TlbGeometry(256, 8));
    const double sa4 = model.tlbArea(TlbGeometry(256, 4));
    EXPECT_NEAR(fa / sa8, 2.0, 0.6);
    EXPECT_NEAR(fa / sa4, 2.0, 0.6);
}

TEST(MqfCalibration, FullAssocCheaperThanHighWaysForSmallTlbs)
{
    // Figure 5: below 64 entries full associativity is cheaper than
    // 4- or 8-way set associativity.
    AreaModel model;
    for (std::uint64_t entries : {16, 32}) {
        const double fa =
            model.tlbArea(TlbGeometry::fullyAssoc(entries));
        EXPECT_LT(fa, model.tlbArea(TlbGeometry(entries, 4)))
            << entries;
        EXPECT_LT(fa, model.tlbArea(TlbGeometry(entries, 8)))
            << entries;
    }
}

TEST(MqfCalibration, EqualCostFa256AndSa512)
{
    // Section 5.1: "for approximately the same cost, designers can
    // choose either a 256-entry fully-associative TLB or a 512-entry
    // 8-way TLB".
    AreaModel model;
    const double fa256 = model.tlbArea(TlbGeometry::fullyAssoc(256));
    const double sa512 = model.tlbArea(TlbGeometry(512, 8));
    EXPECT_NEAR(fa256 / sa512, 1.0, 0.30);
}

TEST(MqfCalibration, LineSizeSavesUpTo37Percent)
{
    // Figure 6: an 8-word line reduces cache cost by as much as ~37%
    // relative to a 1-word line at equal capacity.
    AreaModel model;
    double best = 0.0;
    for (std::uint64_t kb : {2, 4, 8, 16, 32, 64}) {
        const double w1 =
            model.cacheArea(CacheGeometry::fromWords(kb * 1024, 1, 1));
        const double w8 =
            model.cacheArea(CacheGeometry::fromWords(kb * 1024, 8, 1));
        best = std::max(best, 1.0 - w8 / w1);
    }
    EXPECT_NEAR(best, 0.37, 0.08);
}

} // namespace
} // namespace oma
